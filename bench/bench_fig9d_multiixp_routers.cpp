// Fig. 9d — Multi-IXP router types vs the number of next-hop IXPs.
// Shape targets: a large share of still-unknown interfaces ride on
// multi-IXP routers; some routers connect to 10+ IXPs; remote multi-IXP
// routers outnumber hybrid ones.
#include "common.hpp"

#include <map>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;
using infer::router_kind;

void print_fig9d() {
  const auto& pr = benchx::shared_pipeline();

  std::map<router_kind, util::category_counter> by_kind;
  std::size_t multi = 0, ten_plus = 0, total_groups = 0;
  for (const auto& r : pr.s4.routers) {
    ++total_groups;
    if (r.ixps.size() < 2) continue;
    ++multi;
    if (r.ixps.size() > 10) ++ten_plus;
    const auto bucket = r.ixps.size() <= 2   ? "2 IXPs"
                        : r.ixps.size() <= 5 ? "3-5 IXPs"
                        : r.ixps.size() <= 10 ? "6-10 IXPs"
                                              : ">10 IXPs";
    by_kind[r.kind].add(bucket);
  }

  std::cout << "Fig. 9d: multi-IXP router types vs number of next-hop IXPs\n";
  util::text_table t;
  t.header({"Router type", "2 IXPs", "3-5 IXPs", "6-10 IXPs", ">10 IXPs", "Total"});
  for (const auto kind : {router_kind::local, router_kind::remote, router_kind::hybrid,
                          router_kind::undetermined}) {
    const auto& c = by_kind[kind];
    t.row({std::string{to_string(kind)}, std::to_string(c.count("2 IXPs")),
           std::to_string(c.count("3-5 IXPs")), std::to_string(c.count("6-10 IXPs")),
           std::to_string(c.count(">10 IXPs")), std::to_string(c.total())});
  }
  t.footer("Paper: ~80% of the routers of still-unknown interfaces have multiple "
           "IXP connections, 25% of them to >10 IXPs; remote multi-IXP routers "
           "outnumber hybrid ones.");
  t.print(std::cout);
  std::cout << "router groups observed: " << total_groups << ", multi-IXP: " << multi
            << ", connecting to >10 IXPs: " << ten_plus << "\n";
  const auto remote_n = by_kind[router_kind::remote].total();
  const auto hybrid_n = by_kind[router_kind::hybrid].total();
  std::cout << "remote multi-IXP routers: " << remote_n
            << " vs hybrid: " << hybrid_n
            << (remote_n > hybrid_n ? "  (remote > hybrid, as in the paper)" : "")
            << "\n";
}

void bm_step4(benchmark::State& state) {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const alias::resolver resolve{s.w, s.cfg.pipeline.resolver, 99};
  for (auto _ : state) {
    infer::inference_map inferences;
    auto r = infer::run_step4_multi_ixp(s.view, pr.paths, resolve, s.scope, inferences);
    benchmark::DoNotOptimize(r.routers.size());
  }
}
BENCHMARK(bm_step4)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_fig9d)
