// §6.4 — Routing implications of remote peering at the largest studied
// IXP (DE-CIX Frankfurt analogue).  For every inferred-remote member AS_R
// and every other member AS_x sharing one more IXP, traceroute AS_R ->
// AS_x and classify the crossing: hot-potato compliant (paper: 66%),
// detour over the remote port although a closer IXP exists (18%), or a
// missed chance to offload over the studied IXP (16%).
#include "common.hpp"

#include "opwat/eval/routing.hpp"

namespace {

using namespace opwat;
using eval::routing_verdict;

eval::routing_study run_study() {
  const auto& s = benchx::shared_scenario();
  const auto& pr = benchx::shared_pipeline();
  const auto studied = pr.scope.front();

  std::vector<net::asn> remote_members;
  for (const auto& [key, inf] : pr.inferences.items()) {
    if (key.ixp != studied || inf.cls != infer::peering_class::remote) continue;
    if (const auto asn = s.view.member_of_interface(key.ip))
      remote_members.push_back(*asn);
  }
  const auto engine = s.make_traceroute_engine();
  return eval::run_routing_study(s.w, s.view, s.prefix2as, engine, studied,
                                 remote_members, {});
}

void print_sec64() {
  const auto& s = benchx::shared_scenario();
  const auto study = run_study();

  std::cout << "Sec. 6.4: routing implications at " << s.w.ixps[study.studied_ixp].name
            << " (largest studied IXP)\n";
  std::cout << "pairs examined: " << study.pairs_examined
            << ", crossings attributed: " << study.crossings_found << "\n";
  util::text_table t;
  t.header({"Verdict", "Count", "Share", "Paper"});
  const double n = static_cast<double>(study.cases.size());
  const auto row = [&](routing_verdict v, const char* paper) {
    const auto c = study.count(v);
    t.row({std::string{to_string(v)}, std::to_string(c),
           n > 0 ? util::fmt_percent(static_cast<double>(c) / n) : "-", paper});
  };
  row(routing_verdict::hot_potato, "66%");
  row(routing_verdict::rp_detour, "18%");
  row(routing_verdict::missed_rp, "16%");
  row(routing_verdict::other, "-");
  t.footer("Detours and missed offloads each move traffic hundreds of km away from "
           "the latency-optimal exchange.");
  t.print(std::cout);

  // Magnitude of the detours, like the paper's "100s of km" remark.
  double km_sum = 0;
  std::size_t detours = 0;
  for (const auto& c : study.cases) {
    if (c.verdict != routing_verdict::rp_detour) continue;
    km_sum += c.used_distance_km - c.closest_distance_km;
    ++detours;
  }
  if (detours > 0)
    std::cout << "average extra distance on rp-detours: "
              << util::fmt_double(km_sum / static_cast<double>(detours), 0) << " km\n";
}

void bm_routing_study(benchmark::State& state) {
  for (auto _ : state) {
    auto study = run_study();
    benchmark::DoNotOptimize(study.cases.size());
  }
}
BENCHMARK(bm_routing_study)->Unit(benchmark::kMillisecond);

}  // namespace

OPWAT_BENCH_MAIN(print_sec64)
