// Loopback load harness for the portal server (ISSUE 7 tentpole): drives
// opwat::portal::server with the deterministic portal::workload and
// reports sustained QPS, p50/p99/p999 latency, shed-rate and cache
// hit-rate — the serving-tier numbers behind the ROADMAP's "heavy
// traffic from millions of users" north star.
//
// Two phases:
//   closed loop   each client keeps a fixed window of pipelined requests
//                 in flight; throughput-bound.  Latency is send→receive
//                 per request id (responses arrive out of order under
//                 the worker pool).
//   open loop     requests fire on the workload's bursty arrival
//                 schedule (gap_s); latency is measured from the
//                 *scheduled* arrival, so queueing delay under bursts is
//                 charged to the server (no coordinated omission).
//
// By default the server runs in-process on an ephemeral loopback port
// over a three-epoch shared_catalog.  The CI load-smoke lane instead
// points the harness at a live opwatd via
//   OPWAT_PORTAL_CONNECT=host:port   (external server)
//   OPWAT_PORTAL_SNAPSHOT=path       (.opwatc the server serves — the
//                                     workload reads its shape from it)
//
// Knobs (env): OPWAT_PORTAL_CLIENTS, OPWAT_PORTAL_WORKERS,
// OPWAT_PORTAL_WINDOW, OPWAT_PORTAL_DURATION_S, OPWAT_PORTAL_QPS
// (open-loop target), OPWAT_BENCH_SCALE=tiny for the CI smoke shape.
//
// JSON schema (stable; consumed by tools/ci/bench_summary.py):
//   {bench:"portal_load", scale, server, workers, clients, window,
//    phases:[{mode, duration_s, requests, responses_ok, shed, errors,
//             protocol_errors, qps, p50_us, p99_us, p999_us, max_us,
//             target_qps}],
//    server_stats:{...}, cache_hit_rate}
#include "common.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "opwat/portal/client.hpp"
#include "opwat/portal/server.hpp"
#include "opwat/portal/workload.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/util/json.hpp"
#include "opwat/util/latency.hpp"

namespace {

using opwat::util::fmt_double;
using clock_t_ = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

bool tiny_scale() {
  const char* scale = std::getenv("OPWAT_BENCH_SCALE");
  return scale && std::string_view{scale} == "tiny";
}

struct phase_result {
  std::string mode;
  double duration_s = 0;    ///< configured measurement window
  double elapsed_s = 0;     ///< actual wall time incl. final drain
  double target_qps = 0;    ///< open loop only
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;          ///< non-ok, non-shed statuses
  std::uint64_t protocol_errors = 0; ///< framing/encoding-level failures
  opwat::util::latency_recorder lat;

  [[nodiscard]] double qps() const {
    const std::uint64_t done = ok + shed + errors;
    return elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0;
  }
  void merge(const phase_result& o) {
    sent += o.sent;
    ok += o.ok;
    shed += o.shed;
    errors += o.errors;
    protocol_errors += o.protocol_errors;
    lat.merge(o.lat);
  }
};

/// Classifies one response into the phase counters.
void account(phase_result& r, const opwat::portal::response& resp,
             const std::unordered_map<std::uint32_t, clock_t_::time_point>& pending) {
  using opwat::portal::portal_errc;
  if (resp.status == portal_errc::ok) {
    r.ok++;
  } else if (resp.status == portal_errc::overloaded) {
    r.shed++;
  } else {
    r.errors++;
    if (resp.status == portal_errc::bad_version ||
        resp.status == portal_errc::bad_frame ||
        resp.status == portal_errc::truncated ||
        resp.status == portal_errc::oversized ||
        resp.status == portal_errc::internal)
      r.protocol_errors++;
  }
  const auto it = pending.find(resp.id);
  if (it != pending.end()) {
    const auto dt = clock_t_::now() - it->second;
    r.lat.record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
}

/// One closed-loop client: keep `window` requests in flight until the
/// deadline, then drain.  Request indices stride by n_clients from
/// base + idx so client streams are disjoint and deterministic.
phase_result closed_loop_client(const std::string& addr, std::uint16_t port,
                                const opwat::portal::workload& wl,
                                std::uint64_t base, std::size_t idx,
                                std::size_t n_clients, std::size_t window,
                                double duration_s, bool record) {
  phase_result r;
  opwat::portal::client c{addr, port};
  std::unordered_map<std::uint32_t, clock_t_::time_point> pending;
  pending.reserve(window * 2);
  std::uint64_t i = base + idx;
  const auto deadline =
      clock_t_::now() + std::chrono::duration_cast<clock_t_::duration>(
                            std::chrono::duration<double>(duration_s));
  while (clock_t_::now() < deadline) {
    while (pending.size() < window) {
      auto req = wl.nth(i);
      i += n_clients;
      c.send(req);
      pending.emplace(req.id, clock_t_::now());
      r.sent++;
    }
    if (auto resp = c.receive(50)) {
      account(r, *resp, pending);
      pending.erase(resp->id);
    }
    while (auto resp = c.try_receive()) {
      account(r, *resp, pending);
      pending.erase(resp->id);
    }
  }
  // Drain what is still in flight (graceful-drain guarantee: every
  // admitted request gets its response).
  while (!pending.empty()) {
    auto resp = c.receive(2000);
    if (!resp) break;  // server wedged — counted as missing below
    account(r, *resp, pending);
    pending.erase(resp->id);
  }
  r.protocol_errors += pending.size();  // never answered
  (void)record;
  return r;
}

/// Open-loop in-flight cap, kept well under the server's default
/// per-connection pipeline limit (server_config::max_pipeline = 128).
/// A generator that has fallen behind schedule on a slow host would
/// otherwise fire its whole backlog as one burst and get shed — which
/// measures the generator's scheduling debt, not the server.
constexpr std::size_t k_open_loop_inflight = 64;

/// One open-loop client: fire on the workload's arrival schedule.  The
/// shared arrival stream is thinned across clients by scaling each gap
/// by n_clients, approximating a split of one target_qps process.
phase_result open_loop_client(const std::string& addr, std::uint16_t port,
                              const opwat::portal::workload& wl,
                              std::uint64_t base, std::size_t idx,
                              std::size_t n_clients, double duration_s) {
  phase_result r;
  opwat::portal::client c{addr, port};
  std::unordered_map<std::uint32_t, clock_t_::time_point> pending;
  std::uint64_t i = base + idx;
  const auto t0 = clock_t_::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<clock_t_::duration>(
               std::chrono::duration<double>(duration_s));
  double t = 0.0;
  while (true) {
    t += wl.gap_s(i) * static_cast<double>(n_clients);
    const auto due = t0 + std::chrono::duration_cast<clock_t_::duration>(
                              std::chrono::duration<double>(t));
    if (due > deadline) break;
    // Wait for the scheduled instant, draining responses meanwhile.
    while (clock_t_::now() < due) {
      bool got = false;
      while (auto resp = c.try_receive()) {
        account(r, *resp, pending);
        pending.erase(resp->id);
        got = true;
      }
      if (!got && due - clock_t_::now() > std::chrono::microseconds{300})
        std::this_thread::sleep_for(std::chrono::microseconds{100});
    }
    // Bounded open loop: block for responses at the in-flight cap.
    // The wait is still charged to latency — pending stores the
    // scheduled arrival — so this does not hide queueing delay.
    bool wedged = false;
    while (pending.size() >= k_open_loop_inflight) {
      auto resp = c.receive(2000);
      if (!resp) {
        wedged = true;  // server unresponsive; the drain below accounts
        break;
      }
      account(r, *resp, pending);
      pending.erase(resp->id);
    }
    if (wedged) break;
    auto req = wl.nth(i);
    i += n_clients;
    c.send(req);
    // Latency is charged from the scheduled arrival, not the actual
    // send: a late send because the previous burst backed us up is the
    // server's queueing delay, not omitted time.
    pending.emplace(req.id, due);
    r.sent++;
    while (auto resp = c.try_receive()) {
      account(r, *resp, pending);
      pending.erase(resp->id);
    }
  }
  while (!pending.empty()) {
    auto resp = c.receive(2000);
    if (!resp) break;
    account(r, *resp, pending);
    pending.erase(resp->id);
  }
  r.protocol_errors += pending.size();
  return r;
}

template <class Fn>
phase_result run_clients(std::size_t n_clients, Fn&& per_client) {
  std::vector<phase_result> parts(n_clients);
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  const auto t0 = clock_t_::now();
  for (std::size_t k = 0; k < n_clients; ++k)
    threads.emplace_back([&, k] { parts[k] = per_client(k); });
  for (auto& th : threads) th.join();
  phase_result total;
  for (const auto& p : parts) total.merge(p);
  total.elapsed_s =
      std::chrono::duration<double>(clock_t_::now() - t0).count();
  return total;
}

/// Pulls the server's counter map via the stats op.
std::unordered_map<std::string, std::uint64_t> fetch_stats(
    const std::string& addr, std::uint16_t port) {
  opwat::portal::client c{addr, port};
  opwat::portal::request req;
  req.op = opwat::portal::op_code::stats;
  req.id = 1;
  const auto resp = c.call(req);
  std::unordered_map<std::string, std::uint64_t> out;
  for (const auto& g : resp.groups) out.emplace(g.key, g.count);
  return out;
}

void print_portal_load() {
  using namespace opwat;
  const bool tiny = tiny_scale();

  // ---- target: in-process server, or an external opwatd ----
  std::string addr = "127.0.0.1";
  std::uint16_t port = 0;
  std::string server_desc = "in-process";
  std::unique_ptr<serve::shared_catalog> shared;
  std::unique_ptr<portal::server> srv;
  std::unique_ptr<portal::workload> wl;
  const std::size_t workers = env_size("OPWAT_PORTAL_WORKERS", 2);

  portal::workload_config wcfg;
  wcfg.seed = 7;
  wcfg.limit = tiny ? 20 : 50;
  wcfg.target_qps = env_double("OPWAT_PORTAL_QPS", tiny ? 20000.0 : 40000.0);

  if (const char* connect = std::getenv("OPWAT_PORTAL_CONNECT")) {
    const std::string spec{connect};
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "OPWAT_PORTAL_CONNECT must be host:port\n";
      std::exit(2);
    }
    addr = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(std::stoi(spec.substr(colon + 1)));
    server_desc = spec;
    const char* snap = std::getenv("OPWAT_PORTAL_SNAPSHOT");
    if (!snap) {
      std::cerr << "OPWAT_PORTAL_CONNECT requires OPWAT_PORTAL_SNAPSHOT "
                   "(the .opwatc the server serves) for workload shape\n";
      std::exit(2);
    }
    const serve::catalog shape = serve::catalog::load(snap);
    wl = std::make_unique<portal::workload>(shape, wcfg);
  } else {
    // Three identical epochs so diff / historical-epoch query shapes are
    // exercised (diffs between identical epochs are cheap but run the
    // full diff path).
    shared = std::make_unique<serve::shared_catalog>();
    const auto& s = benchx::shared_scenario();
    const auto& pr = benchx::shared_pipeline();
    shared->ingest(s.w, s.view, pr, "bench-2018-04");
    shared->ingest(s.w, s.view, pr, "bench-2018-05");
    shared->ingest(s.w, s.view, pr, "bench-2018-06");
    portal::server_config scfg;
    scfg.workers = workers;
    srv = std::make_unique<portal::server>(*shared, scfg);
    srv->start();
    port = srv->port();
    wl = std::make_unique<portal::workload>(*shared->snapshot(), wcfg);
  }

  const std::size_t clients = env_size("OPWAT_PORTAL_CLIENTS", 2);
  const std::size_t window = env_size("OPWAT_PORTAL_WINDOW", 32);
  const double duration_s =
      env_double("OPWAT_PORTAL_DURATION_S", tiny ? 2.0 : 4.0);

  // Warm-up (fills the result cache; not reported).
  run_clients(1, [&](std::size_t k) {
    return closed_loop_client(addr, port, *wl, 0, k, 1, window,
                              std::min(0.5, duration_s / 4), false);
  });

  // Phase 1: closed loop (throughput).
  phase_result closed = run_clients(clients, [&](std::size_t k) {
    return closed_loop_client(addr, port, *wl, 10'000'000, k, clients, window,
                              duration_s, true);
  });
  closed.mode = "closed_loop";
  closed.duration_s = duration_s;

  // Phase 2: open loop (bursty arrivals; shed behavior).
  phase_result open = run_clients(clients, [&](std::size_t k) {
    return open_loop_client(addr, port, *wl, 20'000'000, k, clients,
                            duration_s);
  });
  open.mode = "open_loop";
  open.duration_s = duration_s;
  open.target_qps = wcfg.target_qps;

  const auto stats = fetch_stats(addr, port);
  const auto stat = [&](const char* k) -> std::uint64_t {
    const auto it = stats.find(k);
    return it == stats.end() ? 0 : it->second;
  };
  const std::uint64_t hits = stat("cache_hits");
  const std::uint64_t misses = stat("cache_misses");
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  // ---- report ----
  const auto us = [](std::uint64_t ns) {
    return fmt_double(static_cast<double>(ns) / 1000.0, 1);
  };
  util::text_table t{"portal load (" + server_desc + ", " +
                     std::to_string(clients) + " clients, window " +
                     std::to_string(window) + ")"};
  t.header({"phase", "requests", "qps", "p50 us", "p99 us", "p999 us",
            "max us", "shed", "errors"});
  for (const phase_result* p : {&closed, &open}) {
    t.row({p->mode, std::to_string(p->sent), fmt_double(p->qps(), 0),
           us(p->lat.p50_ns()), us(p->lat.p99_ns()), us(p->lat.p999_ns()),
           us(p->lat.max_ns()), std::to_string(p->shed),
           std::to_string(p->errors)});
  }
  t.footer("cache hit rate " + fmt_double(hit_rate * 100.0, 1) +
           "%; open-loop target " + fmt_double(wcfg.target_qps, 0) + " qps");
  t.print(std::cout);

  util::json_writer w;
  w.begin_object();
  w.key("bench").value("portal_load");
  w.key("scale").value(tiny ? "tiny" : "paper");
  w.key("server").value(server_desc);
  w.key("workers").value(static_cast<std::uint64_t>(workers));
  w.key("clients").value(static_cast<std::uint64_t>(clients));
  w.key("window").value(static_cast<std::uint64_t>(window));
  w.key("phases").begin_array();
  for (const phase_result* p : {&closed, &open}) {
    w.begin_object();
    w.key("mode").value(p->mode);
    w.key("duration_s").value(p->duration_s);
    w.key("target_qps").value(p->target_qps);
    w.key("requests").value(p->sent);
    w.key("responses_ok").value(p->ok);
    w.key("shed").value(p->shed);
    w.key("errors").value(p->errors);
    w.key("protocol_errors").value(p->protocol_errors);
    w.key("qps").value(p->qps());
    w.key("p50_us").value(static_cast<double>(p->lat.p50_ns()) / 1000.0);
    w.key("p99_us").value(static_cast<double>(p->lat.p99_ns()) / 1000.0);
    w.key("p999_us").value(static_cast<double>(p->lat.p999_ns()) / 1000.0);
    w.key("max_us").value(static_cast<double>(p->lat.max_ns()) / 1000.0);
    w.end_object();
  }
  w.end_array();
  w.key("server_stats").begin_object();
  for (const char* k :
       {"connections_accepted", "connections_refused", "requests_admitted",
        "responses_ok", "responses_error", "shed_queue_full", "shed_pipeline",
        "protocol_errors", "cache_hits", "cache_misses", "catalog_version"})
    w.key(k).value(stat(k));
  w.end_object();
  w.key("cache_hit_rate").value(hit_rate);
  w.end_object();
  std::cout << "\nJSON: " << w.str() << "\n";
  if (const char* path = std::getenv("OPWAT_BENCH_JSON")) {
    std::ofstream out{path};
    out << w.str() << "\n";
  }

  if (srv) srv->stop();
}

// Micro-benchmarks on the protocol hot path (frame encode/decode and
// cache-key derivation), timed by google-benchmark after the load run.
void BM_request_roundtrip(benchmark::State& state) {
  opwat::portal::request q;
  q.op = opwat::portal::op_code::rtt_band;
  q.id = 42;
  q.epoch = "bench-2018-06";
  q.rtt_lo_ms = 1.0;
  q.rtt_hi_ms = 12.5;
  q.ixp_id = 7;
  for (auto _ : state) {
    const auto frame = opwat::portal::encode_request(q);
    const auto back = opwat::portal::decode_request(
        std::string_view{frame}.substr(opwat::portal::k_frame_prefix_bytes));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_request_roundtrip);

void BM_cache_key(benchmark::State& state) {
  opwat::portal::request q;
  q.op = opwat::portal::op_code::group_by;
  q.id = 42;
  q.dim = opwat::portal::group_dim::cls;
  q.ixp_id = 7;
  for (auto _ : state) {
    auto key = opwat::portal::cache_key(q);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_cache_key);

}  // namespace

OPWAT_BENCH_MAIN(print_portal_load)
