#include <gtest/gtest.h>

#include "opwat/util/strings.hpp"

namespace {

using namespace opwat::util;

TEST(Strings, SplitBasic) {
  const auto v = split("a,b,c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto v = split("a,,c,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[3], "");
}

TEST(Strings, SplitEmptyString) {
  const auto v = split("", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, JoinRoundtrip) {
  const std::vector<std::string> v{"x", "y", "z"};
  EXPECT_EQ(join(v, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Strings, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.2756, 1), "27.6%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Strings, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(31690), "31,690");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
  EXPECT_EQ(fmt_count(-31690), "-31,690");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("IX-Amsterdam", "IX-"));
  EXPECT_FALSE(starts_with("IX", "IX-"));
  EXPECT_TRUE(starts_with("abc", ""));
}

// Property: join(split(s)) == s for separator-free pieces.
class SplitJoinRoundtrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SplitJoinRoundtrip, Roundtrips) {
  const auto& s = GetParam();
  EXPECT_EQ(join(split(s, ';'), ";"), s);
}

INSTANTIATE_TEST_SUITE_P(Cases, SplitJoinRoundtrip,
                         ::testing::Values("", "a", "a;b", ";;", "x;;y;",
                                           "the;quick;brown;fox"));

}  // namespace
