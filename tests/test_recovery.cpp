// Crash-safety of the .opwatc store: append ordering, atomic save, and
// the recover-mode loader / repair tool.
//
// The central property test simulates killing the writer at EVERY byte
// offset of an append_epoch (the record bytes, then each of the 20
// header-publish bytes) and asserts the crash-recovery contract:
//
//   - before the header publish begins (any torn record tail), a
//     recover-mode load yields EXACTLY the pre-append catalog — proven
//     by re-saving it and comparing bytes — and a strict load raises a
//     typed store_error;
//   - once the record is durable and the header tear has made the new
//     epoch count visible (offset >= magic+version+1 into the header),
//     recovery rolls FORWARD to the completed append: the record was
//     fsynced before the publish began, so adopting it never resurrects
//     unsynced data.
//
// save() is covered by the complementary sweep: a crash at any offset
// of the tmp-file write — or right before the rename — leaves the
// original file byte-identical, because save never writes to the live
// path at all.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/failpoint.hpp"

namespace {

using namespace opwat;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
}

void write_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

/// Byte image a catalog would save — via a temp file, since save() is
/// the only public encoder.
std::string save_bytes(const serve::catalog& c, const std::string& name) {
  const auto p = temp_path(name);
  c.save(p);
  return read_bytes(p);
}

/// The smallest world the generator supports comfortably: one base
/// epoch plus one appended epoch, a few hundred rows total, so the
/// whole-file sweep below stays fast.
class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = eval::small_scenario_config(17);
    cfg.world.n_ases = 300;
    cfg.world.largest_ixp_members = 90;
    s_ = new eval::scenario{eval::scenario::build(cfg)};
    auto pcfg = s_->cfg.pipeline;
    const auto pr0 = s_->run_inference(pcfg);
    pcfg.seed += 1;
    const auto pr1 = s_->run_inference(pcfg);

    pre_ = new serve::catalog;
    pre_->ingest(s_->w, s_->view, pr0, "e00");
    post_ = new serve::catalog;
    post_->ingest(s_->w, s_->view, pr0, "e00");
    post_->ingest(s_->w, s_->view, pr1, "e01");

    pre_bytes_ = new std::string{save_bytes(*pre_, "recovery_pre.opwatc")};
    post_bytes_ = new std::string{save_bytes(*post_, "recovery_post.opwatc")};
  }
  static void TearDownTestSuite() {
    delete s_;
    delete pre_;
    delete post_;
    delete pre_bytes_;
    delete post_bytes_;
    s_ = nullptr;
    pre_ = nullptr;
    post_ = nullptr;
    pre_bytes_ = nullptr;
    post_bytes_ = nullptr;
  }
  void TearDown() override { util::failpoint_registry::instance().clear(); }

  static eval::scenario* s_;
  static serve::catalog* pre_;
  static serve::catalog* post_;
  static std::string* pre_bytes_;   ///< one-epoch file image
  static std::string* post_bytes_;  ///< two-epoch file image (== append)

  /// What the file looks like when the appender dies after writing k
  /// bytes of its total write sequence: first the record (appended past
  /// the committed end), then the 20 header bytes (the publish).
  static std::string crash_image(std::size_t k) {
    const std::string& pre = *pre_bytes_;
    const std::string& post = *post_bytes_;
    const std::size_t record_len = post.size() - pre.size();
    std::string img = pre;
    if (k <= record_len) {
      img += post.substr(pre.size(), k);
    } else {
      img += post.substr(pre.size(), record_len);
      const std::size_t hk = k - record_len;  // header bytes published
      img.replace(0, hk, post.substr(0, hk));
    }
    return img;
  }
};

eval::scenario* RecoveryTest::s_ = nullptr;
serve::catalog* RecoveryTest::pre_ = nullptr;
serve::catalog* RecoveryTest::post_ = nullptr;
std::string* RecoveryTest::pre_bytes_ = nullptr;
std::string* RecoveryTest::post_bytes_ = nullptr;

TEST_F(RecoveryTest, AppendIsFullSavePlusHeaderPatch) {
  // The sweep below slices post_bytes_ on this structure; pin it.
  ASSERT_GT(post_bytes_->size(), pre_bytes_->size());
  const auto p = temp_path("recovery_append.opwatc");
  write_bytes(p, *pre_bytes_);
  post_->append_epoch(p, 1);
  EXPECT_EQ(read_bytes(p), *post_bytes_);
}

TEST_F(RecoveryTest, WriterKilledAtEveryByteOffset) {
  const std::size_t record_len = post_bytes_->size() - pre_bytes_->size();
  const std::size_t total = record_len + serve::k_store_header_size;
  const auto p = temp_path("recovery_sweep.opwatc");
  // The header tear becomes visible once the first epoch-count byte
  // (offset 12: after magic + version) has landed; from then on the
  // durable record is adopted by roll-forward.
  const std::size_t publish_edge = record_len + 13;

  for (std::size_t k = 0; k <= total; ++k) {
    write_bytes(p, crash_image(k));

    serve::recovery_report rep;
    serve::catalog rec;
    ASSERT_NO_THROW(
        rec = serve::catalog::load(p, serve::recovery_policy::recover, &rep))
        << "offset " << k;
    EXPECT_FALSE(rep.unrecoverable) << "offset " << k;

    if (k == 0 || k == total) {
      // Not a crash: the intact pre-/post-append file.
      EXPECT_FALSE(rep.recovered) << "offset " << k;
      EXPECT_NO_THROW((void)serve::catalog::load(p)) << "offset " << k;
    } else if (k < publish_edge) {
      // Crash before the publish took effect: recovery == pre-append,
      // byte for byte.
      EXPECT_TRUE(rep.recovered) << "offset " << k;
      EXPECT_EQ(rep.epochs_kept, 1u) << "offset " << k;
      EXPECT_EQ(save_bytes(rec, "recovery_out.opwatc"), *pre_bytes_)
          << "offset " << k;
      EXPECT_THROW((void)serve::catalog::load(p), serve::store_error)
          << "offset " << k;
    } else {
      // Torn header over a durable record: roll forward to the
      // completed append.
      EXPECT_EQ(rep.epochs_kept, 2u) << "offset " << k;
      EXPECT_EQ(save_bytes(rec, "recovery_out.opwatc"), *post_bytes_)
          << "offset " << k;
    }
  }
}

TEST_F(RecoveryTest, RepairRewritesTheCrashImageInPlace) {
  const std::size_t record_len = post_bytes_->size() - pre_bytes_->size();
  const auto p = temp_path("recovery_repair.opwatc");
  // Torn record tail → repaired file IS the pre-append snapshot.
  write_bytes(p, crash_image(record_len / 2));
  auto rep = serve::store_repair(p);
  EXPECT_TRUE(rep.recovered);
  EXPECT_EQ(read_bytes(p), *pre_bytes_);
  // Torn header over a complete record → roll-forward to post-append.
  write_bytes(p, crash_image(record_len + 15));
  rep = serve::store_repair(p);
  EXPECT_TRUE(rep.recovered);
  EXPECT_TRUE(rep.header_repaired);
  EXPECT_EQ(read_bytes(p), *post_bytes_);
  // Intact file → untouched, report says so.
  rep = serve::store_repair(p);
  EXPECT_FALSE(rep.recovered);
  EXPECT_EQ(read_bytes(p), *post_bytes_);
}

TEST_F(RecoveryTest, UnrecoverableFilesReportNotThrow) {
  const auto p = temp_path("recovery_unrec.opwatc");
  for (const std::string img :
       {std::string{"short"}, std::string{"NOTMAGIC"} + std::string(20, 'x'),
        std::string{}}) {
    write_bytes(p, img);
    serve::recovery_report rep;
    serve::catalog rec;
    ASSERT_NO_THROW(
        rec = serve::catalog::load(p, serve::recovery_policy::recover, &rep));
    EXPECT_TRUE(rep.unrecoverable);
    EXPECT_EQ(rec.epoch_count(), 0u);
    // --repair refuses: there is nothing safe to write back.
    EXPECT_THROW((void)serve::store_repair(p), serve::store_error);
  }
}

TEST_F(RecoveryTest, StrictLoadIsTheDefaultPolicy) {
  const auto p = temp_path("recovery_strict.opwatc");
  write_bytes(p, *pre_bytes_);
  serve::recovery_report rep;
  rep.recovered = true;  // must be reset by a strict load
  const auto c =
      serve::catalog::load(p, serve::recovery_policy::strict, &rep);
  EXPECT_EQ(c.epoch_count(), 1u);
  EXPECT_FALSE(rep.recovered);
  // Strict on damage: the same typed errors plain load() raises.
  write_bytes(p, crash_image(5));
  EXPECT_THROW(
      (void)serve::catalog::load(p, serve::recovery_policy::strict, nullptr),
      serve::store_error);
}

// --- atomic save -------------------------------------------------------------

TEST_F(RecoveryTest, SaveCrashNeverTouchesTheOldFile) {
  auto& reg = util::failpoint_registry::instance();
  const auto p = temp_path("recovery_atomic.opwatc");
  write_bytes(p, *pre_bytes_);

  // Crash right before the rename: tmp written and synced, live file
  // untouched.
  reg.configure("store-save-rename=always:error");
  EXPECT_THROW(post_->save(p), serve::store_error);
  EXPECT_EQ(read_bytes(p), *pre_bytes_);

  // Crash mid-write of the tmp file, at several offsets including 0.
  for (const std::size_t cap : {std::size_t{0}, std::size_t{1},
                                std::size_t{100}, post_bytes_->size() - 1}) {
    reg.configure("store-save-write=always:short-write:" +
                  std::to_string(cap));
    EXPECT_THROW(post_->save(p), serve::store_error) << cap;
    EXPECT_EQ(read_bytes(p), *pre_bytes_) << cap;
  }

  // fsync failure is a failed save, not a corrupted live file.
  reg.configure("store-save-fsync=always:error");
  EXPECT_THROW(post_->save(p), serve::store_error);
  EXPECT_EQ(read_bytes(p), *pre_bytes_);

  // With the faults cleared the same save goes through.
  reg.clear();
  post_->save(p);
  EXPECT_EQ(read_bytes(p), *post_bytes_);
}

TEST_F(RecoveryTest, AppendFaultsLeaveARecoverableFile) {
  auto& reg = util::failpoint_registry::instance();
  const auto p = temp_path("recovery_appendfault.opwatc");

  // Short-write of the record, then a crash: recover-load gives the
  // pre-append catalog back.
  write_bytes(p, *pre_bytes_);
  reg.configure("store-append-write=always:short-write:64");
  EXPECT_THROW(post_->append_epoch(p, 1), serve::store_error);
  reg.clear();
  serve::recovery_report rep;
  const auto rec =
      serve::catalog::load(p, serve::recovery_policy::recover, &rep);
  EXPECT_TRUE(rep.recovered);
  EXPECT_EQ(save_bytes(rec, "recovery_out2.opwatc"), *pre_bytes_);

  // Injected fsync failure aborts the append before the publish: the
  // file still strict-loads as the pre-append catalog plus trailing
  // bytes — i.e. recover-load, then retry the append cleanly.
  write_bytes(p, *pre_bytes_);
  reg.configure("store-append-fsync=always:error");
  EXPECT_THROW(post_->append_epoch(p, 1), serve::store_error);
  reg.clear();
  EXPECT_THROW((void)serve::catalog::load(p), serve::store_error);
  auto repaired = serve::store_repair(p);
  EXPECT_TRUE(repaired.recovered);
  post_->append_epoch(p, 1);
  EXPECT_EQ(read_bytes(p), *post_bytes_);

  // Publish-step failure: the record is durable, only the header patch
  // is missing — recover-load truncates back to the committed prefix.
  write_bytes(p, *pre_bytes_);
  reg.configure("store-append-publish=always:error");
  EXPECT_THROW(post_->append_epoch(p, 1), serve::store_error);
  reg.clear();
  const auto rec2 =
      serve::catalog::load(p, serve::recovery_policy::recover, nullptr);
  EXPECT_EQ(rec2.epoch_count(), 1u);
}

TEST_F(RecoveryTest, ReadFailpointSurfacesAsTypedIoError) {
  const auto p = temp_path("recovery_read.opwatc");
  write_bytes(p, *pre_bytes_);
  util::failpoint_registry::instance().configure("store-read=1-times:error");
  try {
    (void)serve::catalog::load(p);
    FAIL() << "expected store_error";
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::io);
  }
  // One-shot: the next load succeeds.
  EXPECT_NO_THROW((void)serve::catalog::load(p));
}

}  // namespace
