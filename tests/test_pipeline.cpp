// End-to-end integration: the full pipeline on a generated scenario,
// scored against ground-truth validation — the Table 4 experiment in
// miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "opwat/eval/metrics.hpp"
#include "opwat/eval/scenario.hpp"

namespace {

using namespace opwat;
using namespace opwat::infer;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = eval::small_scenario_config(7);
    s_ = new eval::scenario{eval::scenario::build(cfg)};
    pr_ = new pipeline_result{s_->run_inference()};
  }
  static void TearDownTestSuite() {
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static pipeline_result* pr_;
};

eval::scenario* PipelineTest::s_ = nullptr;
pipeline_result* PipelineTest::pr_ = nullptr;

TEST_F(PipelineTest, ScopeIsSortedBySize) {
  for (std::size_t i = 1; i < pr_->scope.size(); ++i)
    EXPECT_GE(s_->ixp_size(pr_->scope[i - 1]), s_->ixp_size(pr_->scope[i]));
}

TEST_F(PipelineTest, InferencesOnlyWithinScope) {
  const std::set<world::ixp_id> scope{pr_->scope.begin(), pr_->scope.end()};
  for (const auto& [key, inf] : pr_->inferences.items())
    EXPECT_TRUE(scope.contains(key.ixp));
}

TEST_F(PipelineTest, HighAccuracyAgainstGroundTruth) {
  const auto vd = s_->validation.test;
  const auto m = eval::compute_metrics(pr_->inferences, vd);
  EXPECT_GT(m.acc, 0.85) << "pipeline accuracy collapsed";
  EXPECT_GT(m.cov, 0.70) << "pipeline coverage collapsed";
  // Loose bounds: the tiny validation set makes single misclassifications
  // worth several points (the strict shape guards live in
  // test_paper_shapes.cpp on a mid-size world).
  EXPECT_LT(m.fpr, 0.15);
  EXPECT_LT(m.fnr, 0.30);
}

TEST_F(PipelineTest, BeatsRttBaselineOnAccuracy) {
  const auto vd = s_->validation.test;
  const auto ours = eval::compute_metrics(pr_->inferences, vd);
  const auto base = eval::compute_metrics(run_baseline_on(*pr_), vd);
  EXPECT_GE(ours.acc, base.acc);
}

TEST_F(PipelineTest, BaselineSuffersOnFalseNegatives) {
  // Nearby remote peers break the 10 ms threshold (§4.1).
  const auto vd = s_->validation.test;
  const auto ours = eval::compute_metrics(pr_->inferences, vd);
  const auto base = eval::compute_metrics(run_baseline_on(*pr_), vd);
  EXPECT_GT(base.fnr, ours.fnr);
}

TEST_F(PipelineTest, EveryInferenceCarriesProvenance) {
  for (const auto& [key, inf] : pr_->inferences.items()) {
    if (inf.cls == peering_class::unknown) continue;
    EXPECT_NE(inf.step, method_step::none);
  }
}

TEST_F(PipelineTest, Step1InferencesAreTrulyResellerCustomers) {
  // Port-capacity inferences are the pipeline's most precise signal.
  std::size_t checked = 0, correct = 0;
  for (const auto& [key, inf] : pr_->inferences.items()) {
    if (inf.step != method_step::port_capacity) continue;
    const auto mid = s_->w.membership_by_interface(key.ip);
    if (!mid) continue;
    ++checked;
    if (s_->w.truly_remote(s_->w.memberships[*mid])) ++correct;
  }
  if (checked > 0)
    EXPECT_GE(static_cast<double>(correct) / static_cast<double>(checked), 0.9);
}

TEST_F(PipelineTest, RttAnnotationsArePlausible) {
  for (const auto& [key, inf] : pr_->inferences.items()) {
    if (std::isnan(inf.rtt_min_ms)) continue;
    EXPECT_GT(inf.rtt_min_ms, 0.0);
    EXPECT_LT(inf.rtt_min_ms, 1000.0);
  }
}

TEST_F(PipelineTest, ContributionsSumToInferences) {
  std::size_t total = 0;
  for (const auto x : pr_->scope)
    for (const auto step : {method_step::port_capacity, method_step::rtt_colo,
                            method_step::multi_ixp, method_step::private_links})
      total += pr_->contribution(x, step);
  EXPECT_EQ(total, pr_->inferences.count(peering_class::local) +
                       pr_->inferences.count(peering_class::remote));
}

TEST_F(PipelineTest, CountsPerIxpConsistent) {
  std::size_t local = 0, remote = 0;
  for (const auto x : pr_->scope) {
    local += pr_->count(x, peering_class::local);
    remote += pr_->count(x, peering_class::remote);
  }
  EXPECT_EQ(local, pr_->inferences.count(peering_class::local));
  EXPECT_EQ(remote, pr_->inferences.count(peering_class::remote));
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  const auto pr2 = s_->run_inference();
  EXPECT_EQ(pr2.inferences.count(peering_class::local),
            pr_->inferences.count(peering_class::local));
  EXPECT_EQ(pr2.inferences.count(peering_class::remote),
            pr_->inferences.count(peering_class::remote));
  for (const auto& [key, inf] : pr_->inferences.items()) {
    const auto* other = pr2.inferences.find(key);
    ASSERT_TRUE(other);
    EXPECT_EQ(other->cls, inf.cls);
    EXPECT_EQ(other->step, inf.step);
  }
}

TEST_F(PipelineTest, MgmtFilteredVpsAreAtlas) {
  for (const auto vi : pr_->rtt.mgmt_filtered_vps)
    EXPECT_EQ(s_->vps[vi].type, measure::vp_type::atlas);
}

TEST_F(PipelineTest, UsableVpsAreAliveAndScoped) {
  const std::set<world::ixp_id> scope{pr_->scope.begin(), pr_->scope.end()};
  for (const auto vi : pr_->rtt.usable_vps) {
    EXPECT_TRUE(s_->vps[vi].alive);
    EXPECT_TRUE(scope.contains(s_->vps[vi].ixp));
  }
}

TEST_F(PipelineTest, StepOrderAblationStillWorks) {
  // Decisions in a different order must still produce sane output (the
  // ablation bench sweeps this; here we guard it doesn't crash/regress).
  infer::pipeline_config cfg = s_->cfg.pipeline;
  cfg.order = {method_step::rtt_colo, method_step::port_capacity,
               method_step::multi_ixp, method_step::private_links};
  const auto pr2 = s_->run_inference(cfg);
  const auto vd = s_->validation.test;
  const auto m = eval::compute_metrics(pr2.inferences, vd);
  EXPECT_GT(m.acc, 0.75);
}

TEST_F(PipelineTest, SubsetOfStepsLowersCoverage) {
  infer::pipeline_config cfg = s_->cfg.pipeline;
  cfg.order = {method_step::port_capacity};
  const auto pr2 = s_->run_inference(cfg);
  EXPECT_LT(pr2.inferences.count(peering_class::local) +
                pr2.inferences.count(peering_class::remote),
            pr_->inferences.count(peering_class::local) +
                pr_->inferences.count(peering_class::remote));
}

// Seed sweep: the pipeline keeps beating the baseline across worlds.
class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, AccuracyHoldsAcrossSeeds) {
  auto cfg = eval::small_scenario_config(GetParam());
  const auto s = eval::scenario::build(cfg);
  const auto pr = s.run_inference();
  const auto vd = s.validation.test;
  const auto m = eval::compute_metrics(pr.inferences, vd);
  EXPECT_GT(m.acc, 0.80) << "seed " << GetParam();
  // Tiny worlds may lack wide-area IXPs / nearby remotes, letting the
  // baseline luck out; allow statistical noise but not a collapse.
  const auto base = eval::compute_metrics(run_baseline_on(pr), vd);
  EXPECT_GE(m.acc + 0.05, base.acc) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep, ::testing::Values(1, 2, 3, 13));

}  // namespace
