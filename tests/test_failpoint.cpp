// util::failpoint — deterministic fault injection.
//
// What is nailed down here:
//   - the spec grammar: every malformed spec is a typed
//     std::invalid_argument naming the offending token, and a spec
//     naming an unregistered site is rejected outright (fault schedules
//     must not silently no-op because of a typo);
//   - trigger policies: always, K-times, after-K, and the
//     deterministic one-in-N stream — same seed, same schedule;
//   - hit/fire accounting, the action payloads (short-write byte cap),
//     and clear() disarming the registry;
//   - the OPWAT_FAILPOINT macro contract: evaluates to "off" for
//     unconfigured sites and when the registry is empty.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "opwat/util/failpoint.hpp"
#include "opwat/util/failpoint_sites.hpp"

namespace {

using namespace opwat;
using util::failpoint_action;
using util::failpoint_registry;

/// Every test leaves the process-global registry disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint_registry::instance().clear(); }
};

TEST_F(FailpointTest, SiteTableIsKebabCaseAndSorted) {
  // The registry of names is itself load-bearing: configure() and the
  // lint rule both key off it.
  for (const auto site : util::k_failpoint_sites) {
    EXPECT_FALSE(site.empty());
    for (const char c : site)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')
          << site;
    EXPECT_NE(site.front(), '-');
    EXPECT_NE(site.back(), '-');
    EXPECT_TRUE(util::is_failpoint_site(site));
  }
  for (std::size_t i = 1; i < util::k_failpoint_sites.size(); ++i)
    EXPECT_LT(util::k_failpoint_sites[i - 1], util::k_failpoint_sites[i]);
  EXPECT_FALSE(util::is_failpoint_site("no-such-site"));
  EXPECT_FALSE(util::is_failpoint_site(""));
}

TEST_F(FailpointTest, MalformedSpecsAreTypedErrors) {
  auto& reg = failpoint_registry::instance();
  const char* bad[] = {
      "net-send",                              // missing '='
      "net-send=",                             // missing policy:action
      "net-send=always",                       // missing action
      "no-such-site=always:error",             // unregistered site
      "net-send=always:explode",               // unknown action
      "net-send=sometimes:error",              // unknown policy
      "net-send=one-in-0:error",               // never fires
      "net-send=one-in-x:error",               // not a number
      "net-send=always:error:7",               // error takes no arg
      "net-send=always:short-write",           // short-write wants a cap
      "net-send=always:delay-ms",              // delay-ms wants a duration
      "net-send=always:abort:1",               // abort takes no arg
      "net-send=always:short-write:8:9",       // too many fields
      "net-send=always:error;net-send=always:error",  // duplicate site
  };
  for (const char* spec : bad) {
    EXPECT_THROW(reg.configure(spec), std::invalid_argument) << spec;
    // A rejected spec must not half-arm the registry.
    EXPECT_FALSE(reg.armed()) << spec;
  }
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  auto& reg = failpoint_registry::instance();
  reg.configure("net-send=always:error");
  EXPECT_TRUE(reg.armed());
  reg.configure("");
  EXPECT_FALSE(reg.armed());
  EXPECT_FALSE(OPWAT_FAILPOINT("net-send"));
}

TEST_F(FailpointTest, AlwaysErrorFiresEveryHit) {
  auto& reg = failpoint_registry::instance();
  reg.configure("net-send=always:error");
  for (int i = 0; i < 5; ++i) {
    const auto fire = OPWAT_FAILPOINT("net-send");
    EXPECT_TRUE(static_cast<bool>(fire));
    EXPECT_EQ(fire.action, failpoint_action::error);
  }
  EXPECT_EQ(reg.hits("net-send"), 5u);
  EXPECT_EQ(reg.fires("net-send"), 5u);
  // Sites not in the spec never fire and are not counted.
  EXPECT_FALSE(OPWAT_FAILPOINT("net-recv"));
  EXPECT_EQ(reg.hits("net-recv"), 0u);
}

TEST_F(FailpointTest, KTimesFiresExactlyK) {
  auto& reg = failpoint_registry::instance();
  reg.configure("store-read=3-times:error");
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (OPWAT_FAILPOINT("store-read")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(reg.hits("store-read"), 10u);
  EXPECT_EQ(reg.fires("store-read"), 3u);
}

TEST_F(FailpointTest, AfterKSkipsTheFirstK) {
  auto& reg = failpoint_registry::instance();
  reg.configure("store-read=after-4:error");
  std::vector<bool> pattern;
  for (int i = 0; i < 8; ++i)
    pattern.push_back(static_cast<bool>(OPWAT_FAILPOINT("store-read")));
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, false, false, true, true,
                                        true, true}));
}

TEST_F(FailpointTest, OneInNIsDeterministicPerSeed) {
  auto& reg = failpoint_registry::instance();
  const auto schedule = [&](std::uint64_t seed) {
    reg.configure("net-send=one-in-3:error", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i)
      fired.push_back(static_cast<bool>(OPWAT_FAILPOINT("net-send")));
    return fired;
  };
  const auto a = schedule(1);
  const auto b = schedule(1);
  EXPECT_EQ(a, b);  // replayable: the whole point of seeded injection
  const auto c = schedule(2);
  EXPECT_NE(a, c);  // a different seed is a different schedule
  // The rate is roughly 1/3 — loose bounds, the stream is pseudorandom.
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 200u / 6);
  EXPECT_LT(fires, 200u / 2);
}

TEST_F(FailpointTest, ShortWriteCarriesItsByteCap) {
  failpoint_registry::instance().configure(
      "store-save-write=always:short-write:17");
  const auto fire = OPWAT_FAILPOINT("store-save-write");
  EXPECT_TRUE(static_cast<bool>(fire));
  EXPECT_EQ(fire.action, failpoint_action::short_write);
  EXPECT_EQ(fire.arg, 17u);
}

TEST_F(FailpointTest, DelayMsBlocksThenReturnsOff) {
  failpoint_registry::instance().configure("net-recv=1-times:delay-ms:30");
  const auto t0 = std::chrono::steady_clock::now();
  const auto fire = OPWAT_FAILPOINT("net-recv");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // A delay is not an error: the caller proceeds normally, only later.
  EXPECT_FALSE(static_cast<bool>(fire));
  EXPECT_GE(elapsed, std::chrono::milliseconds{30});
}

TEST_F(FailpointTest, MultiSiteSpecsConfigureIndependently) {
  auto& reg = failpoint_registry::instance();
  reg.configure("net-send=2-times:error;store-read=always:short-write:4;");
  EXPECT_TRUE(OPWAT_FAILPOINT("net-send"));
  EXPECT_TRUE(OPWAT_FAILPOINT("net-send"));
  EXPECT_FALSE(OPWAT_FAILPOINT("net-send"));
  const auto fire = OPWAT_FAILPOINT("store-read");
  EXPECT_EQ(fire.action, failpoint_action::short_write);
  EXPECT_EQ(fire.arg, 4u);
}

TEST_F(FailpointTest, ConfigureFromEnvReadsSpecAndSeed) {
  auto& reg = failpoint_registry::instance();
  ::setenv("OPWAT_FAILPOINTS", "net-send=1-times:error", 1);
  ::setenv("OPWAT_FAILPOINTS_SEED", "99", 1);
  reg.configure_from_env();
  EXPECT_TRUE(reg.armed());
  EXPECT_TRUE(OPWAT_FAILPOINT("net-send"));
  EXPECT_FALSE(OPWAT_FAILPOINT("net-send"));

  // Unset / empty: a no-op, NOT a clear — production processes call
  // configure_from_env unconditionally at startup.
  ::unsetenv("OPWAT_FAILPOINTS");
  ::unsetenv("OPWAT_FAILPOINTS_SEED");
  reg.configure("store-read=always:error");
  reg.configure_from_env();
  EXPECT_TRUE(reg.armed());
  EXPECT_TRUE(OPWAT_FAILPOINT("store-read"));
}

}  // namespace
