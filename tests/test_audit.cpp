// The contract/audit layer: OPWAT_ASSERT / OPWAT_INVARIANT /
// OPWAT_UNREACHABLE (opwat/util/contracts.hpp) and the deep
// epoch/catalog audits (opwat/serve/audit.cpp).  The injection tests
// corrupt one derived structure at a time — a bad permutation, a stale
// count index, an inconsistent zone map, broken watermarks — and assert
// audit() throws store_error{corrupt} naming that structure, i.e. the
// corruption is caught AT the invariant, not three queries later.

// Force the contract macros on in this TU regardless of build type, so
// the macro tests behave identically in Release and Debug suites.
#ifndef OPWAT_AUDIT
#define OPWAT_AUDIT 1
#endif

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/contracts.hpp"

namespace opwat::serve {

/// Test-only backdoor (befriended by epoch and catalog) used to inject
/// precise corruption into otherwise-immutable derived structures.
struct epoch_test_access {
  static std::vector<epoch>& epochs(catalog& c) { return c.epochs_; }
  static std::vector<std::uint32_t>& asn_perm(epoch& e) { return e.asn_perm_; }
  static std::vector<std::uint32_t>& ip_perm(epoch& e) { return e.ip_perm_; }
  static std::vector<epoch::block>& blocks(epoch& e) { return e.blocks_; }
  static std::array<std::size_t, infer::k_n_peering_classes>& totals(epoch& e) {
    return e.totals_;
  }
  static std::uint32_t& ixp_watermark(epoch& e) { return e.ixp_watermark_; }
  static std::vector<std::uint8_t>& cls(epoch& e) { return e.cls_; }
};

}  // namespace opwat::serve

namespace {

using namespace opwat;
using serve::epoch_test_access;

// --- contract macros ---------------------------------------------------------

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(OPWAT_ASSERT(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(OPWAT_INVARIANT(true, "trivially"));
}

TEST(Contracts, FailedAssertThrowsWithLocationAndMessage) {
  try {
    OPWAT_ASSERT(2 + 2 == 5, "ministry of truth");
    FAIL() << "OPWAT_ASSERT did not throw";
  } catch (const util::contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_audit.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("assertion failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("ministry of truth"), std::string::npos) << what;
  }
}

TEST(Contracts, FailedInvariantThrows) {
  EXPECT_THROW(OPWAT_INVARIANT(false, "broken"), util::contract_violation);
}

TEST(Contracts, UnreachableThrowsInEveryBuild) {
  EXPECT_THROW(OPWAT_UNREACHABLE("cannot happen"), util::contract_violation);
}

TEST(Contracts, ViolationIsALogicError) {
  EXPECT_THROW(OPWAT_UNREACHABLE("typed"), std::logic_error);
}

// --- audit fixtures ----------------------------------------------------------

/// A small two-epoch catalog; every test takes a fresh copy to corrupt.
class AuditTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(17))};
    cat_ = new serve::catalog{};
    auto pcfg = s_->cfg.pipeline;
    cat_->ingest(s_->w, s_->view, s_->run_inference(pcfg), "2018-03");
    pcfg.seed += 1;
    cat_->ingest(s_->w, s_->view, s_->run_inference(pcfg), "2018-04");
  }
  static void TearDownTestSuite() {
    delete cat_;
    delete s_;
    cat_ = nullptr;
    s_ = nullptr;
  }

  /// Asserts `corrupt(copy)` makes audit() throw store_error{corrupt}
  /// whose message mentions `needle`.
  template <typename Fn>
  static void expect_caught(Fn&& corrupt, const std::string& needle) {
    serve::catalog copy = *cat_;
    corrupt(copy);
    try {
      copy.audit();
      FAIL() << "audit() accepted corruption expected to mention: " << needle;
    } catch (const serve::store_error& e) {
      EXPECT_EQ(e.kind(), serve::store_errc::corrupt) << e.what();
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos) << e.what();
    }
  }

  static eval::scenario* s_;
  static serve::catalog* cat_;
};

eval::scenario* AuditTest::s_ = nullptr;
serve::catalog* AuditTest::cat_ = nullptr;

TEST_F(AuditTest, CleanCatalogPassesEveryCheck) {
  EXPECT_NO_THROW(cat_->audit());
  for (std::uint32_t e = 0; e < cat_->epoch_count(); ++e)
    EXPECT_NO_THROW(cat_->at(e).audit(*cat_));
}

TEST_F(AuditTest, RoundTrippedCatalogPassesAudit) {
  const auto path = testing::TempDir() + "audit_roundtrip.opwatc";
  cat_->save(path);
  const auto loaded = serve::catalog::load(path);
  EXPECT_NO_THROW(loaded.audit());
}

// --- injected corruption, one derived structure at a time -------------------

TEST_F(AuditTest, SwappedAsnPermutationEntriesAreCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& perm = epoch_test_access::asn_perm(epoch_test_access::epochs(c)[0]);
        ASSERT_GE(perm.size(), 2u);
        // Swapping the first and last entries breaks the (ASN, index)
        // sort order without breaking the permutation property.
        std::swap(perm.front(), perm.back());
      },
      "asn permutation index");
}

TEST_F(AuditTest, DuplicatePermutationEntryIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& perm = epoch_test_access::ip_perm(epoch_test_access::epochs(c)[1]);
        ASSERT_GE(perm.size(), 2u);
        perm[1] = perm[0];  // no longer a bijection
      },
      "ip permutation index");
}

TEST_F(AuditTest, StalePerClassCountIndexIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& b = epoch_test_access::blocks(epoch_test_access::epochs(c)[0]).front();
        ++b.by_class[static_cast<std::size_t>(infer::peering_class::remote)];
      },
      "per-class counts disagree");
}

TEST_F(AuditTest, StalePerStepCountIndexIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& b = epoch_test_access::blocks(epoch_test_access::epochs(c)[0]).back();
        ++b.by_step[static_cast<std::size_t>(infer::method_step::rtt_colo)];
      },
      "per-step counts disagree");
}

TEST_F(AuditTest, StaleEpochTotalsAreCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& totals = epoch_test_access::totals(epoch_test_access::epochs(c)[1]);
        ++totals[static_cast<std::size_t>(infer::peering_class::local)];
      },
      "epoch totals disagree");
}

TEST_F(AuditTest, InconsistentZoneMapRttBoundsAreCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& blocks = epoch_test_access::blocks(epoch_test_access::epochs(c)[0]);
        for (auto& b : blocks)
          if (b.zone.any_measured_rtt) {
            b.zone.rtt_max_ms += 1.0;  // bounds no longer tight
            return;
          }
        FAIL() << "fixture has no measured RTTs to corrupt";
      },
      "zone map: RTT bounds");
}

TEST_F(AuditTest, InconsistentZoneMapClassMaskIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& b = epoch_test_access::blocks(epoch_test_access::epochs(c)[0]).front();
        b.zone.cls_mask = static_cast<std::uint8_t>(b.zone.cls_mask ^ 0x7);
      },
      "class/step masks");
}

TEST_F(AuditTest, BlockFramingGapIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& blocks = epoch_test_access::blocks(epoch_test_access::epochs(c)[0]);
        ASSERT_GE(blocks.size(), 2u);
        ++blocks[1].begin;  // rows [old begin, new begin) now belong nowhere
      },
      "begins at row");
}

TEST_F(AuditTest, OutOfRangeClassValueIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& cls = epoch_test_access::cls(epoch_test_access::epochs(c)[0]);
        ASSERT_FALSE(cls.empty());
        cls[0] = 0xff;
      },
      "class value");
}

TEST_F(AuditTest, WatermarkBeyondDictionaryIsCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& wm =
            epoch_test_access::ixp_watermark(epoch_test_access::epochs(c).back());
        wm = wm + 1000;
      },
      "exceeds dictionary size");
}

TEST_F(AuditTest, NonMonotoneWatermarksAreCaught) {
  expect_caught(
      [](serve::catalog& c) {
        auto& wm =
            epoch_test_access::ixp_watermark(epoch_test_access::epochs(c).front());
        // Epoch 0 claiming a larger watermark than epoch 1 breaks the
        // delta encoding append_epoch relies on.
        wm = epoch_test_access::epochs(c).back().ixp_watermark() + 1;
      },
      "");  // either the monotonicity or the bound check fires first
}

}  // namespace
