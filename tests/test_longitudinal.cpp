// The §8 longitudinal study: per-month inference over an evolving world.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "opwat/eval/longitudinal.hpp"
#include "opwat/serve/store.hpp"

namespace {

using namespace opwat;

class LongitudinalTest : public ::testing::Test {
 protected:
  static constexpr int kMonths = 10;

  static void SetUpTestSuite() {
    auto cfg = eval::small_scenario_config(83);
    cfg.world.months = kMonths;
    cfg.world.n_ases = 400;
    cfg.world.largest_ixp_members = 120;
    s_ = new eval::scenario{eval::scenario::build(cfg)};
    study_ = new eval::longitudinal_study{
        eval::run_longitudinal_study(*s_, {.months = kMonths, .top_n_ixps = 4})};
  }
  static void TearDownTestSuite() {
    delete study_;
    delete s_;
  }
  static eval::scenario* s_;
  static eval::longitudinal_study* study_;
};

eval::scenario* LongitudinalTest::s_ = nullptr;
eval::longitudinal_study* LongitudinalTest::study_ = nullptr;

TEST_F(LongitudinalTest, OneEntryPerMonth) {
  ASSERT_EQ(study_->months.size(), static_cast<std::size_t>(kMonths) + 1);
  for (int m = 0; m <= kMonths; ++m) EXPECT_EQ(study_->months[m].month, m);
}

TEST_F(LongitudinalTest, InferredCountsTrackTruth) {
  for (const auto& mi : study_->months) {
    const auto inferred = mi.inferred_local + mi.inferred_remote;
    const auto truth = mi.truth_local + mi.truth_remote;
    ASSERT_GT(truth, 0u);
    // Coverage stays high throughout the window.
    EXPECT_GT(static_cast<double>(inferred) / static_cast<double>(truth), 0.6)
        << "month " << mi.month;
    // The inferred remote share lands near the true share.
    if (inferred > 0) {
      const double inf_share = static_cast<double>(mi.inferred_remote) /
                               static_cast<double>(inferred);
      const double true_share =
          static_cast<double>(mi.truth_remote) / static_cast<double>(truth);
      EXPECT_NEAR(inf_share, true_share, 0.15) << "month " << mi.month;
    }
  }
}

TEST_F(LongitudinalTest, MemberBaseGrows) {
  const auto& first = study_->months.front();
  const auto& last = study_->months.back();
  EXPECT_GE(last.truth_local + last.truth_remote,
            first.truth_local + first.truth_remote);
}

TEST_F(LongitudinalTest, RemoteJoinsObserved) {
  EXPECT_GT(study_->inferred_remote_joins, 0u);
}

TEST_F(LongitudinalTest, JoinRatioFavoursRemote) {
  // Fig. 12a through the inference lens: remote joins dominate.  Small
  // windows are noisy, so only require the direction.
  if (study_->inferred_local_joins > 3)
    EXPECT_GT(study_->join_ratio(), 1.0);
}

void expect_same_study(const eval::longitudinal_study& a,
                       const eval::longitudinal_study& b) {
  ASSERT_EQ(a.months.size(), b.months.size());
  for (std::size_t m = 0; m < a.months.size(); ++m) {
    EXPECT_EQ(a.months[m].inferred_local, b.months[m].inferred_local) << m;
    EXPECT_EQ(a.months[m].inferred_remote, b.months[m].inferred_remote) << m;
    EXPECT_EQ(a.months[m].unknown, b.months[m].unknown) << m;
    EXPECT_EQ(a.months[m].truth_local, b.months[m].truth_local) << m;
    EXPECT_EQ(a.months[m].truth_remote, b.months[m].truth_remote) << m;
  }
  EXPECT_EQ(a.inferred_local_joins, b.inferred_local_joins);
  EXPECT_EQ(a.inferred_remote_joins, b.inferred_remote_joins);
}

std::string slurp(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
}

TEST_F(LongitudinalTest, StorePathPersistsAndResumes) {
  const eval::longitudinal_config base_cfg{.months = 4, .top_n_ixps = 2};
  const auto baseline = eval::run_longitudinal_study(*s_, base_cfg);

  // First run with a store: same numbers, and the epochs land on disk.
  auto cfg = base_cfg;
  cfg.store_path = testing::TempDir() + "longitudinal.opwatc";
  std::remove(cfg.store_path.c_str());  // never resume a stale run's file
  const auto persisted = eval::run_longitudinal_study(*s_, cfg);
  expect_same_study(baseline, persisted);
  const auto stored = serve::catalog::load(cfg.store_path);
  EXPECT_EQ(stored.epoch_count(), 5u);
  EXPECT_EQ(stored.labels().back(), eval::longitudinal_epoch_label(4));

  // Second run resumes every month from the file (no pipeline work) and
  // must neither change the results nor rewrite the store.
  const auto image = slurp(cfg.store_path);
  const auto resumed = eval::run_longitudinal_study(*s_, cfg);
  expect_same_study(baseline, resumed);
  EXPECT_EQ(slurp(cfg.store_path), image);
}

TEST_F(LongitudinalTest, StoreResumeExtendsShorterRun) {
  // A 2-month study persists months 0-2; rerunning with months=4 only
  // computes the missing months and lands on the same numbers.
  auto cfg = eval::longitudinal_config{.months = 2, .top_n_ixps = 2};
  cfg.store_path = testing::TempDir() + "longitudinal_extend.opwatc";
  std::remove(cfg.store_path.c_str());
  (void)eval::run_longitudinal_study(*s_, cfg);
  EXPECT_EQ(serve::catalog::load(cfg.store_path).epoch_count(), 3u);

  cfg.months = 4;
  const auto extended = eval::run_longitudinal_study(*s_, cfg);
  EXPECT_EQ(serve::catalog::load(cfg.store_path).epoch_count(), 5u);
  const auto baseline =
      eval::run_longitudinal_study(*s_, {.months = 4, .top_n_ixps = 2});
  expect_same_study(baseline, extended);
}

TEST_F(LongitudinalTest, CorruptStoreIsNotSilentlyRecomputed) {
  auto cfg = eval::longitudinal_config{.months = 1, .top_n_ixps = 2};
  cfg.store_path = testing::TempDir() + "longitudinal_corrupt.opwatc";
  std::remove(cfg.store_path.c_str());
  (void)eval::run_longitudinal_study(*s_, cfg);
  // Truncate the store mid-file: the next run must surface the typed
  // error instead of quietly rebuilding over possibly-good data.
  const auto image = slurp(cfg.store_path);
  std::ofstream f{cfg.store_path, std::ios::binary | std::ios::trunc};
  f.write(image.data(), static_cast<std::streamsize>(image.size() / 2));
  f.close();
  EXPECT_THROW(eval::run_longitudinal_study(*s_, cfg), serve::store_error);
}

TEST(LongitudinalEdge, ZeroMonthWorldStillRuns) {
  auto cfg = eval::small_scenario_config(84);
  cfg.world.months = 0;
  const auto s = eval::scenario::build(cfg);
  const auto study = eval::run_longitudinal_study(s, {.months = 2, .top_n_ixps = 2});
  ASSERT_EQ(study.months.size(), 3u);
  // Without membership history no real joins exist; a handful of phantom
  // joins from monthly DB-dump churn (records dropped one month, present
  // the next) are a modelled artifact, not growth.
  const auto phantom = study.inferred_local_joins + study.inferred_remote_joins;
  const auto base = study.months.front().inferred_local +
                    study.months.front().inferred_remote;
  EXPECT_LE(phantom, std::max<std::size_t>(3, base / 20));
}

}  // namespace
