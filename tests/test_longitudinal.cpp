// The §8 longitudinal study: per-month inference over an evolving world.
#include <gtest/gtest.h>

#include "opwat/eval/longitudinal.hpp"

namespace {

using namespace opwat;

class LongitudinalTest : public ::testing::Test {
 protected:
  static constexpr int kMonths = 10;

  static void SetUpTestSuite() {
    auto cfg = eval::small_scenario_config(83);
    cfg.world.months = kMonths;
    cfg.world.n_ases = 400;
    cfg.world.largest_ixp_members = 120;
    s_ = new eval::scenario{eval::scenario::build(cfg)};
    study_ = new eval::longitudinal_study{
        eval::run_longitudinal_study(*s_, {.months = kMonths, .top_n_ixps = 4})};
  }
  static void TearDownTestSuite() {
    delete study_;
    delete s_;
  }
  static eval::scenario* s_;
  static eval::longitudinal_study* study_;
};

eval::scenario* LongitudinalTest::s_ = nullptr;
eval::longitudinal_study* LongitudinalTest::study_ = nullptr;

TEST_F(LongitudinalTest, OneEntryPerMonth) {
  ASSERT_EQ(study_->months.size(), static_cast<std::size_t>(kMonths) + 1);
  for (int m = 0; m <= kMonths; ++m) EXPECT_EQ(study_->months[m].month, m);
}

TEST_F(LongitudinalTest, InferredCountsTrackTruth) {
  for (const auto& mi : study_->months) {
    const auto inferred = mi.inferred_local + mi.inferred_remote;
    const auto truth = mi.truth_local + mi.truth_remote;
    ASSERT_GT(truth, 0u);
    // Coverage stays high throughout the window.
    EXPECT_GT(static_cast<double>(inferred) / static_cast<double>(truth), 0.6)
        << "month " << mi.month;
    // The inferred remote share lands near the true share.
    if (inferred > 0) {
      const double inf_share = static_cast<double>(mi.inferred_remote) /
                               static_cast<double>(inferred);
      const double true_share =
          static_cast<double>(mi.truth_remote) / static_cast<double>(truth);
      EXPECT_NEAR(inf_share, true_share, 0.15) << "month " << mi.month;
    }
  }
}

TEST_F(LongitudinalTest, MemberBaseGrows) {
  const auto& first = study_->months.front();
  const auto& last = study_->months.back();
  EXPECT_GE(last.truth_local + last.truth_remote,
            first.truth_local + first.truth_remote);
}

TEST_F(LongitudinalTest, RemoteJoinsObserved) {
  EXPECT_GT(study_->inferred_remote_joins, 0u);
}

TEST_F(LongitudinalTest, JoinRatioFavoursRemote) {
  // Fig. 12a through the inference lens: remote joins dominate.  Small
  // windows are noisy, so only require the direction.
  if (study_->inferred_local_joins > 3)
    EXPECT_GT(study_->join_ratio(), 1.0);
}

TEST(LongitudinalEdge, ZeroMonthWorldStillRuns) {
  auto cfg = eval::small_scenario_config(84);
  cfg.world.months = 0;
  const auto s = eval::scenario::build(cfg);
  const auto study = eval::run_longitudinal_study(s, {.months = 2, .top_n_ixps = 2});
  ASSERT_EQ(study.months.size(), 3u);
  // Without membership history no real joins exist; a handful of phantom
  // joins from monthly DB-dump churn (records dropped one month, present
  // the next) are a modelled artifact, not growth.
  const auto phantom = study.inferred_local_joins + study.inferred_remote_joins;
  const auto base = study.months.front().inferred_local +
                    study.months.front().inferred_remote;
  EXPECT_LE(phantom, std::max<std::size_t>(3, base / 20));
}

}  // namespace
