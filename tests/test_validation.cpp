// Validation-dataset construction (§3.5 / Table 2 semantics).
#include <gtest/gtest.h>

#include "opwat/eval/validation.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::eval;

world::world make_world(std::uint64_t seed = 91) {
  auto cfg = world::tiny_config(seed);
  cfg.n_ixps = 12;
  cfg.n_ases = 500;
  cfg.largest_ixp_members = 120;
  return world::generate(cfg);
}

std::vector<world::ixp_id> half_scope(const world::world& w) {
  std::vector<world::ixp_id> scope;
  for (const auto& x : w.ixps)
    if (x.id % 2 == 0) scope.push_back(x.id);
  return scope;
}

TEST(Validation, SplitsControlAndTestByScope) {
  const auto w = make_world();
  const auto scope = half_scope(w);
  validation_config cfg;
  cfg.n_operator_ixps = 4;
  cfg.n_website_ixps = 4;
  const auto vd = build_validation(w, cfg, scope);
  EXPECT_FALSE(vd.ixps.empty());
  bool any_control = false, any_test = false;
  for (const auto& row : vd.ixps) {
    const bool in_scope =
        std::find(scope.begin(), scope.end(), row.ixp) != scope.end();
    EXPECT_EQ(row.in_control, !in_scope);
    any_control |= row.in_control;
    any_test |= !row.in_control;
  }
  EXPECT_TRUE(any_control);
  EXPECT_TRUE(any_test);
}

TEST(Validation, LabelsMatchGroundTruthByDefault) {
  const auto w = make_world();
  validation_config cfg;
  const auto vd = build_validation(w, cfg, half_scope(w));
  const auto all = vd.all();
  for (const auto& key : all.remote) {
    const auto mid = w.membership_by_interface(key.ip);
    ASSERT_TRUE(mid);
    EXPECT_TRUE(w.truly_remote(w.memberships[*mid]));
  }
  for (const auto& key : all.local) {
    const auto mid = w.membership_by_interface(key.ip);
    ASSERT_TRUE(mid);
    EXPECT_FALSE(w.truly_remote(w.memberships[*mid]));
  }
}

TEST(Validation, DisjointRemoteAndLocalSets) {
  const auto w = make_world();
  const auto vd = build_validation(w, validation_config{}, half_scope(w));
  const auto all = vd.all();
  for (const auto& key : all.remote) EXPECT_FALSE(all.local.contains(key));
}

TEST(Validation, PartialCoverage) {
  const auto w = make_world();
  const auto vd = build_validation(w, validation_config{}, half_scope(w));
  for (const auto& row : vd.ixps) {
    EXPECT_LE(row.validated, row.total_peers);
    EXPECT_EQ(row.validated, row.validated_local + row.validated_remote);
    EXPECT_GT(row.total_peers, 0u);
  }
}

TEST(Validation, OperatorListsSkipLongCableMembers) {
  // Operators cannot see "beyond the cable": long-cable members never
  // appear in operator-derived validation rows.
  const auto w = make_world();
  validation_config cfg;
  cfg.n_operator_ixps = 12;
  cfg.n_website_ixps = 0;
  const auto vd = build_validation(w, cfg, half_scope(w));
  const auto all = vd.all();
  for (const auto& m : w.memberships) {
    if (m.how != world::attachment::long_cable) continue;
    EXPECT_FALSE(all.contains({m.ixp, m.interface_ip}));
  }
}

TEST(Validation, WebsiteMislabelOptionInjectsNoise) {
  const auto w = make_world();
  validation_config cfg;
  cfg.n_operator_ixps = 0;
  cfg.n_website_ixps = 12;
  cfg.website_coverage = 1.0;
  cfg.website_mislabels_long_cable = true;
  const auto vd = build_validation(w, cfg, half_scope(w));
  const auto all = vd.all();
  // At least one long-cable remote shows up as "local" (physical port).
  std::size_t mislabeled = 0;
  for (const auto& m : w.memberships)
    if (m.how == world::attachment::long_cable &&
        all.local.contains({m.ixp, m.interface_ip}))
      ++mislabeled;
  // Only counts IXPs that publish port types; may be zero in tiny worlds,
  // so only assert when some validated IXP had long-cable members.
  std::size_t candidates = 0;
  for (const auto& row : vd.ixps)
    for (const auto mid : w.memberships_of_ixp(row.ixp))
      if (w.memberships[mid].how == world::attachment::long_cable) ++candidates;
  if (candidates > 3) EXPECT_GT(mislabeled, 0u);
}

TEST(Validation, RowsSortedBySize) {
  const auto w = make_world();
  const auto vd = build_validation(w, validation_config{}, half_scope(w));
  for (std::size_t i = 1; i < vd.ixps.size(); ++i)
    EXPECT_GE(vd.ixps[i - 1].total_peers, vd.ixps[i].total_peers);
}

TEST(Validation, Deterministic) {
  const auto w = make_world();
  const auto v1 = build_validation(w, validation_config{}, half_scope(w));
  const auto v2 = build_validation(w, validation_config{}, half_scope(w));
  EXPECT_EQ(v1.all().remote, v2.all().remote);
  EXPECT_EQ(v1.all().local, v2.all().local);
}

TEST(Validation, SubsetAccessors) {
  const auto w = make_world();
  const auto vd = build_validation(w, validation_config{}, half_scope(w));
  EXPECT_EQ(vd.test_ixps().size() + vd.control_ixps().size(), vd.ixps.size());
  const auto all = vd.all();
  EXPECT_EQ(all.size(), vd.control.size() + vd.test.size());
}

}  // namespace
