// Chaos harness: the portal serving stack under deterministic fault
// injection (util::failpoint) and signal storms.  The contract being
// proven, end to end:
//
//   - no fault ever hangs or crashes the server — the acceptor survives
//     injected accept/recv failures, workers survive send failures;
//   - every client call terminates with a TYPED outcome: an ok
//     response, a typed portal_errc, or a net::socket_error — never a
//     silent wedge;
//   - client::call_retry heals transient faults (reconnect + backoff)
//     and refuses to retry permanent ones;
//   - counters stay monotone through the storm, and after the faults
//     clear the SAME server serves a zero-error workload — full
//     recovery, no restart;
//   - a failed catalog reload never evicts the serving snapshot.
//
// tools/ci/chaos_smoke.py runs the same scenario against a real opwatd
// process; this file is the in-process, sanitizer-friendly version.
#include <gtest/gtest.h>

#include <sys/time.h>

#include <csignal>
#include <fstream>
#include <string>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/net/tcp.hpp"
#include "opwat/portal/client.hpp"
#include "opwat/portal/server.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/failpoint.hpp"

namespace {

using namespace opwat;
using namespace opwat::portal;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Fast backoff so fault legs don't dominate wall-clock.
retry_config fast_retry(std::uint32_t attempts) {
  retry_config cfg;
  cfg.max_attempts = attempts;
  cfg.base_backoff_ms = 1;
  cfg.max_backoff_ms = 8;
  return cfg;
}

/// The cumulative counters that must never decrease (gauges like
/// connections_active and the health mirror are excluded).
std::vector<std::uint64_t> cumulative(const server_stats& s) {
  return {s.connections_accepted, s.connections_refused, s.requests_admitted,
          s.responses_ok,         s.responses_error,     s.shed_queue_full,
          s.shed_pipeline,        s.protocol_errors,     s.accept_errors,
          s.cache_hits,           s.cache_misses,        s.http_requests};
}

void expect_monotone(const server_stats& before, const server_stats& after) {
  const auto a = cumulative(before);
  const auto b = cumulative(after);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LE(a[i], b[i]) << "counter " << i << " went backwards";
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = eval::small_scenario_config(53);
    cfg.world.n_ases = 400;
    cfg.world.largest_ixp_members = 120;
    const auto s = eval::scenario::build(cfg);
    const auto pr = s.run_inference();
    cat_ = new serve::shared_catalog;
    cat_->ingest(s.w, s.view, pr, "2018-04");

    server_config scfg;
    scfg.workers = 2;
    scfg.write_timeout_ms = 2000;
    srv_ = new server{*cat_, scfg};
    srv_->start();
  }
  static void TearDownTestSuite() {
    util::failpoint_registry::instance().clear();
    delete srv_;  // stops and drains
    delete cat_;
    srv_ = nullptr;
    cat_ = nullptr;
  }
  void TearDown() override { util::failpoint_registry::instance().clear(); }

  static request ping() {
    request r;
    r.op = op_code::ping;
    r.id = 1;
    return r;
  }

  static serve::shared_catalog* cat_;
  static server* srv_;
};

serve::shared_catalog* ChaosTest::cat_ = nullptr;
server* ChaosTest::srv_ = nullptr;

TEST_F(ChaosTest, ConnectFaultsRetryDeterministically) {
  auto& reg = util::failpoint_registry::instance();
  reg.configure("net-connect=2-times:error");
  // Exactly the first two dials fail; the construction itself has no
  // retry loop, call_retry's reconnect does.
  EXPECT_THROW((client{"127.0.0.1", srv_->port()}), net::socket_error);
  EXPECT_THROW((client{"127.0.0.1", srv_->port()}), net::socket_error);
  client c{"127.0.0.1", srv_->port()};
  const auto resp = c.call(ping());
  EXPECT_EQ(resp.status, portal_errc::ok);
}

TEST_F(ChaosTest, SendFaultsHealThroughReconnect) {
  client c{"127.0.0.1", srv_->port()};
  // Pre-fault sanity so the connection is established and idle.
  EXPECT_EQ(c.call(ping()).status, portal_errc::ok);

  // The only traffic is this client's sends, so the two injected send
  // failures land on its first two attempts, deterministically.
  util::failpoint_registry::instance().configure("net-send=2-times:error");
  const auto resp = c.call_retry(ping(), fast_retry(6));
  EXPECT_EQ(resp.status, portal_errc::ok);
  const auto& rs = c.stats();
  EXPECT_EQ(rs.attempts, 3u);
  EXPECT_EQ(rs.retries, 2u);
  EXPECT_EQ(rs.reconnects, 2u);
  EXPECT_EQ(rs.transient_errors, 2u);
  EXPECT_EQ(rs.giveups, 0u);
}

TEST_F(ChaosTest, ServerRecvFaultsDropOnlyTheConnection) {
  const auto before = srv_->stats();
  util::failpoint_registry::instance().configure("net-recv=2-times:error");
  // The injected recv failures hit the server's acceptor when these
  // connections first turn readable; before the on_readable try/catch
  // they would have killed the acceptor thread and wedged everything.
  client a{"127.0.0.1", srv_->port()};
  const auto ra = a.call_retry(ping(), fast_retry(8));
  EXPECT_EQ(ra.status, portal_errc::ok);
  util::failpoint_registry::instance().clear();
  // The server is still fully alive for a fresh client.
  client b{"127.0.0.1", srv_->port()};
  EXPECT_EQ(b.call(ping()).status, portal_errc::ok);
  expect_monotone(before, srv_->stats());
}

TEST_F(ChaosTest, AcceptFaultsAreCountedAndSurvived) {
  const auto before = srv_->stats();
  util::failpoint_registry::instance().configure("net-accept=2-times:error");
  // The kernel keeps the pending connection queued across the injected
  // accept failures, so the dial itself succeeds and a later sweep of
  // the (still readable) listen socket picks it up.
  client c{"127.0.0.1", srv_->port()};
  const auto resp = c.call_retry(ping(), fast_retry(8));
  EXPECT_EQ(resp.status, portal_errc::ok);
  const auto after = srv_->stats();
  EXPECT_GE(after.accept_errors, before.accept_errors + 2);
  expect_monotone(before, after);
}

TEST_F(ChaosTest, PartialIoReassemblesEverywhere) {
  // Every recv on both sides delivers at most 3 bytes for a while:
  // frames arrive heavily fragmented and the reassembly loops must
  // still produce intact responses.
  util::failpoint_registry::instance().configure(
      "net-recv-partial=64-times:short-write:3");
  client c{"127.0.0.1", srv_->port()};
  request epochs_req;
  epochs_req.op = op_code::epochs;
  epochs_req.id = 7;
  const auto resp = c.call_retry(epochs_req, fast_retry(4));
  EXPECT_EQ(resp.status, portal_errc::ok);
  ASSERT_EQ(resp.labels.size(), 1u);
  EXPECT_EQ(resp.labels[0], "2018-04");
}

TEST_F(ChaosTest, PermanentErrorsAreNeverRetried) {
  client c{"127.0.0.1", srv_->port()};
  request bad;
  bad.op = op_code::rtt_band;
  bad.rtt_lo_ms = 9.0;
  bad.rtt_hi_ms = 1.0;  // lo > hi: bad_request, a verdict not a fault
  bad.id = 3;
  const auto resp = c.call_retry(bad, fast_retry(8));
  EXPECT_EQ(resp.status, portal_errc::bad_request);
  EXPECT_EQ(c.stats().attempts, 1u);  // no second attempt
  EXPECT_EQ(c.stats().retries, 0u);
}

TEST_F(ChaosTest, RandomizedStormThenFullRecovery) {
  // The storm leg: 1-in-5 send failures on BOTH sides (client sends and
  // server responses draw from the same site), seeded, while a client
  // hammers the same query.  Every call must end typed; with 12
  // attempts per call a giveup is possible only at ~1e-5 odds.
  const auto before = srv_->stats();
  util::failpoint_registry::instance().configure("net-send=one-in-5:error", 7);
  client c{"127.0.0.1", srv_->port()};
  for (int i = 0; i < 30; ++i) {
    const auto resp = c.call_retry(ping(), fast_retry(12));
    EXPECT_EQ(resp.status, portal_errc::ok) << "call " << i;
  }
  EXPECT_EQ(c.stats().giveups, 0u);
  const auto mid = srv_->stats();
  expect_monotone(before, mid);

  // Faults clear: the SAME server serves a zero-error run — full
  // recovery without restart.
  util::failpoint_registry::instance().clear();
  client clean{"127.0.0.1", srv_->port()};
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(clean.call(ping()).status, portal_errc::ok) << "call " << i;
  EXPECT_EQ(clean.stats().attempts, 0u);  // plain call(), no retries used
  expect_monotone(mid, srv_->stats());
}

// --- EINTR storm -------------------------------------------------------------

extern "C" void chaos_noop_handler(int) {}

TEST_F(ChaosTest, SignalStormNeverBreaksACall) {
  // A 2 ms interval timer peppers the process with SIGALRM while calls
  // run: every blocking send/recv/poll/connect on both sides keeps
  // getting EINTR and must transparently resume.
  struct sigaction sa {};
  sa.sa_handler = chaos_noop_handler;
  ::sigemptyset(&sa.sa_mask);
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 2000;
  storm.it_value.tv_usec = 2000;
  itimerval off{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

  for (int i = 0; i < 100; ++i) {
    client c{"127.0.0.1", srv_->port()};
    EXPECT_EQ(c.call(ping()).status, portal_errc::ok) << "call " << i;
  }

  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &old, nullptr), 0);
}

// --- self-healing reload -----------------------------------------------------

TEST_F(ChaosTest, FailedReloadKeepsTheServingSnapshot) {
  const auto good = temp_path("chaos_good.opwatc");
  cat_->save(good);
  const auto v0 = cat_->version();

  // Unrecoverable garbage: both policies refuse, nothing is published.
  const auto junk = temp_path("chaos_junk.opwatc");
  {
    std::ofstream f{junk, std::ios::binary};
    f << "this is not an opwatc file at all";
  }
  EXPECT_THROW(cat_->load(junk), serve::store_error);
  EXPECT_THROW((void)cat_->load(junk, serve::recovery_policy::recover),
               serve::store_error);
  EXPECT_EQ(cat_->version(), v0);
  EXPECT_EQ(cat_->snapshot()->epoch_count(), 1u);

  // The server kept serving through both failed reloads.
  client c{"127.0.0.1", srv_->port()};
  EXPECT_EQ(c.call(ping()).status, portal_errc::ok);

  // A torn-tail file under `recover` publishes the valid prefix and
  // reports what was quarantined — the degraded-but-serving path.
  std::string bytes;
  {
    std::ifstream f{good, std::ios::binary};
    bytes.assign(std::istreambuf_iterator<char>{f},
                 std::istreambuf_iterator<char>{});
  }
  const auto torn = temp_path("chaos_torn.opwatc");
  {
    std::ofstream f{torn, std::ios::binary};
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f << "garbage tail that never finished writing";
  }
  EXPECT_THROW(cat_->load(torn), serve::store_error);  // strict refuses
  const auto rep = cat_->load(torn, serve::recovery_policy::recover);
  EXPECT_TRUE(rep.recovered);
  EXPECT_GT(rep.bytes_truncated, 0u);
  EXPECT_EQ(cat_->snapshot()->epoch_count(), 1u);

  // Health mirror: what opwatd pushes after such a reload is what the
  // stats surfaces report.
  health_status h;
  h.degraded = true;
  h.bytes_truncated = rep.bytes_truncated;
  h.reload_failures = 2;
  srv_->set_health(h);
  const auto s = srv_->stats();
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.bytes_truncated, rep.bytes_truncated);
  EXPECT_EQ(s.reload_failures, 2u);
  srv_->set_health({});
  EXPECT_EQ(srv_->stats().degraded, 0u);
}

TEST_F(ChaosTest, StatsOpReportsHealthFields) {
  health_status h;
  h.degraded = true;
  h.quarantined_epochs = 3;
  srv_->set_health(h);
  client c{"127.0.0.1", srv_->port()};
  request r;
  r.op = op_code::stats;
  r.id = 9;
  const auto resp = c.call(r);
  ASSERT_EQ(resp.status, portal_errc::ok);
  std::uint64_t degraded = 99, quarantined = 99;
  for (const auto& g : resp.groups) {
    if (g.key == "degraded") degraded = g.count;
    if (g.key == "quarantined_epochs") quarantined = g.count;
  }
  EXPECT_EQ(degraded, 1u);
  EXPECT_EQ(quarantined, 3u);
  srv_->set_health({});
}

}  // namespace
