#include <gtest/gtest.h>

#include <sstream>

#include "opwat/util/csv.hpp"
#include "opwat/util/table.hpp"

namespace {

using namespace opwat::util;

TEST(TextTable, RendersHeaderAndRows) {
  text_table t{"Demo"};
  t.header({"name", "value"}).row({"alpha", "1"}).row({"bb", "22"});
  const auto s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, HandlesRaggedRows) {
  text_table t;
  t.header({"a", "b", "c"}).row({"only-one"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(TextTable, FooterAppears) {
  text_table t;
  t.row({"x"}).footer("note: synthetic");
  EXPECT_NE(t.str().find("note: synthetic"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  std::ostringstream os;
  bar_chart c{"Chart", 10};
  c.bar("big", 100.0).bar("half", 50.0, "ann");
  c.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(s.find("#####"), std::string::npos);
  EXPECT_NE(s.find("(ann)"), std::string::npos);
}

TEST(BarChart, ZeroValuesRenderEmpty) {
  std::ostringstream os;
  bar_chart c{"Z", 10};
  c.bar("zero", 0.0);
  EXPECT_NO_THROW(c.print(os));
}

TEST(PrintSeries, StepInterpolation) {
  std::ostringstream os;
  print_series(os, "ecdf", {{1.0, 0.5}, {2.0, 1.0}}, {0.5, 1.5, 3.0});
  const auto s = os.str();
  EXPECT_NE(s.find("y=0.0000"), std::string::npos);
  EXPECT_NE(s.find("y=0.5000"), std::string::npos);
  EXPECT_NE(s.find("y=1.0000"), std::string::npos);
}

TEST(Csv, WriterQuotesSpecials) {
  std::ostringstream os;
  csv_writer w{os};
  w.row({"plain", "with,comma", "with\"quote", "multi\nline"});
  const auto s = os.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, ParseSimple) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(Csv, ParseQuoted) {
  const auto f = parse_csv_line(R"(x,"a,b","c""d")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "a,b");
  EXPECT_EQ(f[2], "c\"d");
}

TEST(Csv, ParseEmptyFields) {
  const auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& x : f) EXPECT_TRUE(x.empty());
}

// Property: write-then-parse roundtrips arbitrary fields.
class CsvRoundtrip : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(CsvRoundtrip, Roundtrips) {
  std::ostringstream os;
  csv_writer w{os};
  w.row(GetParam());
  auto line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  EXPECT_EQ(parse_csv_line(line), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvRoundtrip,
    ::testing::Values(std::vector<std::string>{"a", "b"},
                      std::vector<std::string>{"he,llo", "wo\"rld"},
                      std::vector<std::string>{"", "", ""},
                      std::vector<std::string>{"comma,quote\",both"}));

}  // namespace
