// Snapshot noise, preference-order merging and Table 1 conflict accounting.
#include <gtest/gtest.h>

#include <set>

#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/db/snapshot.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::db;

world::world make_world(std::uint64_t seed = 17) {
  return world::generate(world::tiny_config(seed));
}

noise_config no_noise() { return {}; }

TEST(Snapshot, NoNoiseIsComplete) {
  const auto w = make_world();
  const auto s = make_snapshot(w, source_kind::pdb, no_noise(), util::rng{1});
  EXPECT_EQ(s.prefixes.size(), w.ixps.size());
  EXPECT_EQ(s.interfaces.size(), w.memberships.size());
  EXPECT_EQ(s.ports.size(), w.memberships.size());
  // Every interface attributed correctly when conflict rate is 0.
  for (const auto& i : s.interfaces) {
    const auto mid = w.membership_by_interface(i.ip);
    ASSERT_TRUE(mid);
    EXPECT_EQ(w.ases[w.memberships[*mid].member].asn, i.asn);
  }
}

TEST(Snapshot, DropRatesReduceRecords) {
  const auto w = make_world();
  noise_config n;
  n.drop_interface = 0.5;
  const auto s = make_snapshot(w, source_kind::pdb, n, util::rng{2});
  EXPECT_LT(s.interfaces.size(), w.memberships.size());
  EXPECT_GT(s.interfaces.size(), w.memberships.size() / 4);
}

TEST(Snapshot, ConflictsFlipAsns) {
  const auto w = make_world();
  noise_config n;
  n.conflict_interface = 1.0;  // every record wrong (statistically)
  const auto s = make_snapshot(w, source_kind::pdb, n, util::rng{3});
  std::size_t wrong = 0;
  for (const auto& i : s.interfaces) {
    const auto mid = w.membership_by_interface(i.ip);
    if (w.ases[w.memberships[*mid].member].asn != i.asn) ++wrong;
  }
  EXPECT_GT(wrong, s.interfaces.size() / 2);
}

TEST(Snapshot, WebsiteRespectsPublicationFlag) {
  const auto w = make_world();
  const auto s =
      make_snapshot(w, source_kind::website, default_noise(source_kind::website),
                    util::rng{4});
  std::set<world::ixp_id> published;
  for (const auto& x : w.ixps)
    if (x.publishes_member_list) published.insert(x.id);
  for (const auto& i : s.interfaces) EXPECT_TRUE(published.contains(i.ixp));
  for (const auto& p : s.prefixes) EXPECT_TRUE(published.contains(p.ixp));
}

TEST(Snapshot, SpuriousResellerFacilityRecords) {
  const auto w = make_world();
  noise_config n;
  n.spurious_reseller_facility = 1.0;
  const auto s = make_snapshot(w, source_kind::pdb, n, util::rng{5});
  // Every reseller customer must now appear present at its handoff site.
  for (const auto& m : w.memberships) {
    if (m.how != world::attachment::reseller) continue;
    const auto asn = w.ases[m.member].asn;
    const bool found = std::any_of(
        s.as_facilities.begin(), s.as_facilities.end(),
        [&](const auto& r) { return r.asn == asn && r.fac == m.attach_facility; });
    EXPECT_TRUE(found);
  }
}

TEST(Snapshot, DefaultNoiseProfilesDiffer) {
  EXPECT_GT(default_noise(source_kind::pch).drop_interface,
            default_noise(source_kind::he).drop_interface);
  EXPECT_EQ(default_noise(source_kind::he).drop_port, 1.0);
  EXPECT_LT(default_noise(source_kind::pdb).drop_port, 1.0);
}

TEST(Merge, PreferenceOrderResolvesConflicts) {
  const auto w = make_world();
  // HE carries a deliberately wrong ASN for one interface; the website is
  // correct.  The merged view must keep the website's attribution.
  auto web = make_snapshot(w, source_kind::website, no_noise(), util::rng{6});
  auto he = make_snapshot(w, source_kind::he, no_noise(), util::rng{7});
  ASSERT_FALSE(he.interfaces.empty());
  const auto victim_ip = he.interfaces.front().ip;
  const auto true_asn = he.interfaces.front().asn;
  he.interfaces.front().asn = net::asn{4242};

  const std::vector<snapshot> snaps{web, he};
  const auto view = merged_view::build(snaps);
  EXPECT_EQ(view.member_of_interface(victim_ip), true_asn);

  // And the conflict is charged to HE.
  for (const auto& st : view.stats())
    if (st.kind == source_kind::he) EXPECT_EQ(st.interfaces_conflicts, 1u);
}

TEST(Merge, LowerPreferenceFillsGaps) {
  const auto w = make_world();
  auto web = make_snapshot(w, source_kind::website, no_noise(), util::rng{8});
  auto pch = make_snapshot(w, source_kind::pch, no_noise(), util::rng{9});
  // Remove an interface from the website view; PCH still has it.
  ASSERT_FALSE(web.interfaces.empty());
  const auto missing = web.interfaces.back();
  web.interfaces.pop_back();
  const std::vector<snapshot> snaps{web, pch};
  const auto view = merged_view::build(snaps);
  EXPECT_EQ(view.member_of_interface(missing.ip), missing.asn);
}

TEST(Merge, UniqueAccounting) {
  const auto w = make_world();
  auto web = make_snapshot(w, source_kind::website, no_noise(), util::rng{10});
  // A second source with zero records: everything is unique to websites.
  snapshot empty;
  empty.kind = source_kind::pch;
  const std::vector<snapshot> snaps{web, empty};
  const auto view = merged_view::build(snaps);
  for (const auto& st : view.stats()) {
    if (st.kind == source_kind::website) {
      EXPECT_EQ(st.interfaces_unique, st.interfaces_total);
      EXPECT_EQ(st.prefixes_unique, st.prefixes_total);
    }
  }
}

TEST(Merge, PrefixLookupCoversLans) {
  const auto w = make_world();
  const auto snaps = make_standard_snapshots(w, 99);
  const auto view = merged_view::build(snaps);
  std::size_t hits = 0;
  for (const auto& m : w.memberships)
    if (view.ixp_of_address(m.interface_ip) == m.ixp) ++hits;
  // Prefix drop rates are low; nearly all LANs must resolve.
  EXPECT_GT(hits, w.memberships.size() * 8 / 10);
}

TEST(Merge, PortCapacityPreference) {
  const auto w = make_world();
  // Website (authoritative) says Cmin; PDB says something stale.
  ASSERT_FALSE(w.memberships.empty());
  const auto& m = w.memberships.front();
  const auto asn = w.ases[m.member].asn;
  snapshot web;
  web.kind = source_kind::website;
  web.ports.push_back({asn, m.ixp, 1.0});
  snapshot pdb;
  pdb.kind = source_kind::pdb;
  pdb.ports.push_back({asn, m.ixp, 10.0});
  const std::vector<snapshot> snaps{web, pdb};
  const auto view = merged_view::build(snaps);
  EXPECT_EQ(view.port_capacity(asn, m.ixp), 1.0);
}

TEST(Merge, InflectOverridesCoordinates) {
  const auto w = make_world();
  snapshot pdb;
  pdb.kind = source_kind::pdb;
  pdb.facility_geos.push_back({0, {10.0, 10.0}});  // wrong
  snapshot inflect;
  inflect.kind = source_kind::inflect;
  inflect.facility_geos.push_back({0, w.facilities[0].location});
  const std::vector<snapshot> snaps{pdb, inflect};
  const auto view = merged_view::build(snaps);
  const auto loc = view.facility_location(0);
  ASSERT_TRUE(loc);
  EXPECT_NEAR(loc->lat_deg, w.facilities[0].location.lat_deg, 1e-9);
}

TEST(Merge, StandardStackProducesStats) {
  const auto w = make_world();
  const auto snaps = make_standard_snapshots(w, 1);
  const auto view = merged_view::build(snaps);
  EXPECT_EQ(view.stats().size(), 4u);  // website, he, pdb, pch (not inflect)
  EXPECT_GT(view.prefix_count(), 0u);
  EXPECT_GT(view.interface_count(), 0u);
  EXPECT_FALSE(view.known_ixps().empty());
}

TEST(Ip2As, ResolvesRoutedAndBackbone) {
  const auto w = make_world();
  const auto t = ip2as::build(w);
  for (const auto& as : w.ases) {
    EXPECT_EQ(t.lookup(as.backbone.at(1)), as.asn);
    for (const auto& p : as.routed_prefixes) EXPECT_EQ(t.lookup(p.at(1)), as.asn);
  }
  // IXP LAN space is not attributed to any AS.
  EXPECT_FALSE(t.lookup(w.ixps[0].peering_lan.at(5)));
}

}  // namespace
