// The composable inference-engine API: step registry, builder
// validation, per-step ledger, and equivalence of the fluent engine with
// pipeline_builder::from_config() across order permutations and scope
// batch sizes (the pin the legacy run_pipeline() shims carried before
// their removal).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "opwat/eval/scenario.hpp"
#include "opwat/infer/engine.hpp"

namespace {

using namespace opwat;
using namespace opwat::infer;

// ---------------------------------------------------------------------------
// Registry.

TEST(StepRegistry, BuiltinsRegistered) {
  auto& reg = default_registry();
  for (const char* name :
       {"ping-campaign", "path-extraction", "port-capacity", "rtt-colo",
        "multi-ixp", "private-links", "rtt-threshold", "traceroute-rtt"})
    EXPECT_TRUE(reg.contains(name)) << name;

  const auto step = reg.make("rtt-colo");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->name(), "rtt-colo");
  EXPECT_EQ(step->kind(), step_kind::decision);
  EXPECT_EQ(step->granularity(), step_granularity::per_ixp);

  // The campaign is per-IXP shardable (a VP only pings its own IXP and
  // draws are keyed per (seed, VP, target)); path extraction stays on
  // the barrier path and parallelizes over traces instead.
  const auto campaign = reg.make("ping-campaign");
  EXPECT_EQ(campaign->kind(), step_kind::measurement);
  EXPECT_EQ(campaign->granularity(), step_granularity::per_ixp);
  const auto paths = reg.make("path-extraction");
  EXPECT_EQ(paths->kind(), step_kind::measurement);
  EXPECT_EQ(paths->granularity(), step_granularity::cross_ixp);
}

TEST(StepRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)default_registry().make("no-such-step"), std::invalid_argument);
}

TEST(StepRegistry, DuplicateRegistrationThrows) {
  step_registry reg;
  register_builtin_steps(reg);
  EXPECT_THROW(
      reg.add("rtt-colo", [] { return default_registry().make("rtt-colo"); }),
      std::invalid_argument);
}

TEST(StepRegistry, LegacyEnumMapsToRegistryNames) {
  for (const auto s : {method_step::port_capacity, method_step::rtt_colo,
                       method_step::multi_ixp, method_step::private_links,
                       method_step::rtt_threshold, method_step::traceroute_rtt})
    EXPECT_TRUE(default_registry().contains(step_name_of(s))) << to_string(s);
  EXPECT_EQ(step_name_of(method_step::none), "");
}

// ---------------------------------------------------------------------------
// Builder validation.

TEST(PipelineBuilder, RejectsUnknownStepName) {
  EXPECT_THROW(engine().with_step("bogus-step"), std::invalid_argument);
}

TEST(PipelineBuilder, RejectsDuplicateStep) {
  auto b = engine().with_step("port-capacity").with_step("port-capacity");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(PipelineBuilder, RejectsNullStep) {
  EXPECT_THROW(engine().with_step(std::shared_ptr<inference_step>{}),
               std::invalid_argument);
}

TEST(PipelineBuilder, AutoInsertsMeasurementSteps) {
  const auto eng = engine().with_step("rtt-colo").with_step("multi-ixp").build();
  const auto steps = eng.steps();
  ASSERT_EQ(steps.size(), 4u);
  // Producers are prepended before their consumers.
  EXPECT_EQ(steps[0].name, "ping-campaign");
  EXPECT_EQ(steps[1].name, "path-extraction");
  EXPECT_EQ(steps[2].name, "rtt-colo");
  EXPECT_EQ(steps[3].name, "multi-ixp");
}

TEST(PipelineBuilder, RejectsUnsatisfiableInput) {
  struct needy_step final : inference_step {
    std::string_view name() const noexcept override { return "needy"; }
    std::vector<std::string_view> inputs() const override { return {"no-such-product"}; }
    void run(step_context&) override {}
  };
  auto b = engine().with_step(std::make_shared<needy_step>());
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(PipelineBuilder, RejectsConsumerBeforeExplicitProducer) {
  // "rtt" is produced, but only AFTER the step that consumes it.
  auto b = engine().with_step("rtt-colo").with_step("ping-campaign");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(PipelineBuilder, OrderReplacesDecisionChainKeepsMeasurements) {
  const auto eng = engine()
                       .with_step("ping-campaign")
                       .with_step("path-extraction")
                       .with_step("private-links")
                       .order({"port-capacity", "rtt-colo"})
                       .build();
  const auto steps = eng.steps();
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].name, "ping-campaign");
  EXPECT_EQ(steps[1].name, "path-extraction");
  EXPECT_EQ(steps[2].name, "port-capacity");
  EXPECT_EQ(steps[3].name, "rtt-colo");
}

TEST(PipelineBuilder, StepsCarryPaperSections) {
  const auto eng = pipeline_builder::from_config({}).build();
  for (const auto& s : eng.steps())
    EXPECT_FALSE(s.paper_section.empty()) << s.name;
}

// ---------------------------------------------------------------------------
// Engine vs. legacy shim equivalence.

class EngineEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(7))};
  }
  static void TearDownTestSuite() {
    delete s_;
    s_ = nullptr;
  }

  /// The config-translated engine run: the reference every fluent chain
  /// must match (formerly the run_pipeline() shim's code path).
  static pipeline_result run_config(const pipeline_config& cfg) {
    return pipeline_builder::from_config(cfg).build().run(s_->inputs());
  }

  static void expect_same_result(const pipeline_result& a, const pipeline_result& b) {
    EXPECT_EQ(a.scope, b.scope);
    ASSERT_EQ(a.inferences.items().size(), b.inferences.items().size());
    auto ita = a.inferences.items().begin();
    auto itb = b.inferences.items().begin();
    for (; ita != a.inferences.items().end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first);
      EXPECT_EQ(ita->second.cls, itb->second.cls);
      EXPECT_EQ(ita->second.step, itb->second.step);
      EXPECT_EQ(ita->second.feasible_ixp_facilities,
                itb->second.feasible_ixp_facilities);
      if (std::isnan(ita->second.rtt_min_ms))
        EXPECT_TRUE(std::isnan(itb->second.rtt_min_ms));
      else
        EXPECT_DOUBLE_EQ(ita->second.rtt_min_ms, itb->second.rtt_min_ms);
    }
    EXPECT_EQ(a.s1.examined, b.s1.examined);
    EXPECT_EQ(a.s1.inferred_remote, b.s1.inferred_remote);
    EXPECT_EQ(a.s3.decided_local, b.s3.decided_local);
    EXPECT_EQ(a.s3.decided_remote, b.s3.decided_remote);
    EXPECT_EQ(a.s3.left_unknown, b.s3.left_unknown);
    EXPECT_EQ(a.s4.decided, b.s4.decided);
    EXPECT_EQ(a.s5.decided_local + a.s5.decided_remote,
              b.s5.decided_local + b.s5.decided_remote);
  }

  static eval::scenario* s_;
};

eval::scenario* EngineEquivalence::s_ = nullptr;

TEST_F(EngineEquivalence, FluentChainMatchesFromConfigEngine) {
  const auto pr = engine()
                      .with_step("port-capacity")
                      .with_step("rtt-colo")
                      .with_step("multi-ixp")
                      .with_step("private-links")
                      .seed(s_->cfg.pipeline.seed)
                      .build()
                      .run(s_->inputs());
  expect_same_result(run_config(s_->cfg.pipeline), pr);
}

TEST_F(EngineEquivalence, OrderPermutationsMatchConfigTranslation) {
  const std::vector<std::vector<method_step>> orders{
      {method_step::rtt_colo, method_step::port_capacity, method_step::multi_ixp,
       method_step::private_links},
      {method_step::private_links, method_step::multi_ixp, method_step::rtt_colo,
       method_step::port_capacity},
      {method_step::port_capacity, method_step::rtt_colo},
      {method_step::rtt_threshold},
      {method_step::rtt_colo},
  };
  for (const auto& order : orders) {
    auto cfg = s_->cfg.pipeline;
    cfg.order = order;
    expect_same_result(run_config(cfg),
                       pipeline_builder::from_config(s_->cfg.pipeline)
                           .order(order)
                           .build()
                           .run(s_->inputs()));
  }
}

TEST_F(EngineEquivalence, TracerouteRttExtensionMatchesConfigTranslation) {
  auto cfg = s_->cfg.pipeline;
  cfg.use_traceroute_rtt = true;
  cfg.traceroute_rtt.require_local_near = false;
  const auto eng = pipeline_builder::from_config(cfg).build();
  EXPECT_EQ(eng.steps().back().name, "traceroute-rtt");
  const auto pr = eng.run(s_->inputs());
  const auto ref = run_config(cfg);
  expect_same_result(ref, pr);
  EXPECT_EQ(pr.s2b.decided_local + pr.s2b.decided_remote,
            ref.s2b.decided_local + ref.s2b.decided_remote);
}

TEST_F(EngineEquivalence, OrderAfterFromConfigKeepsFlaggedExtension) {
  // order(span<method_step>) mirrors legacy semantics: re-ordering the
  // decision steps must not silently drop the flag-gated §8 epilogue.
  auto cfg = s_->cfg.pipeline;
  cfg.use_traceroute_rtt = true;
  cfg.traceroute_rtt.require_local_near = false;
  const std::vector<method_step> perm{method_step::rtt_colo, method_step::port_capacity,
                                      method_step::multi_ixp, method_step::private_links};
  const auto eng = pipeline_builder::from_config(cfg).order(perm).build();
  EXPECT_EQ(eng.steps().back().name, "traceroute-rtt");
  auto perm_cfg = cfg;
  perm_cfg.order = perm;
  expect_same_result(run_config(perm_cfg), eng.run(s_->inputs()));
}

TEST_F(EngineEquivalence, BatchedExecutionMatchesUnbatched) {
  const auto whole = s_->run_inference();
  for (const std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    auto cfg = s_->cfg.pipeline;
    cfg.batch_size = batch;
    const auto sliced = s_->run_inference(cfg);
    expect_same_result(whole, sliced);
    // Per-IXP steps really ran once per batch.
    const auto* tr = sliced.trace_for("port-capacity");
    ASSERT_NE(tr, nullptr);
    EXPECT_EQ(tr->invocations, (s_->scope.size() + batch - 1) / batch);
    // Cross-IXP steps saw the whole scope in one call.
    const auto* multi = sliced.trace_for("multi-ixp");
    ASSERT_NE(multi, nullptr);
    EXPECT_EQ(multi->invocations, 1u);
  }
}

// ---------------------------------------------------------------------------
// Ledger.

TEST_F(EngineEquivalence, TraceLedgerCoversEveryStep) {
  const auto pr = s_->run_inference();
  ASSERT_EQ(pr.trace.size(), 6u);  // 2 measurement + 4 decision steps
  EXPECT_EQ(pr.trace[0].step, "ping-campaign");
  EXPECT_EQ(pr.trace[1].step, "path-extraction");

  std::size_t local = 0, remote = 0;
  for (const auto& t : pr.trace) {
    EXPECT_GE(t.invocations, 1u);
    EXPECT_GE(t.elapsed_ms, 0.0);
    local += t.decided_local;
    remote += t.decided_remote;
  }
  // Every decision is attributed to exactly one ledger entry.
  EXPECT_EQ(local, pr.inferences.count(peering_class::local));
  EXPECT_EQ(remote, pr.inferences.count(peering_class::remote));

  // Measurement steps never decide.
  EXPECT_EQ(pr.trace[0].decided_local + pr.trace[0].decided_remote, 0u);
  // The ledger agrees with the per-step stats structs.
  const auto* colo = pr.trace_for("rtt-colo");
  ASSERT_NE(colo, nullptr);
  EXPECT_EQ(colo->decided_local, pr.s3.decided_local);
  EXPECT_EQ(colo->decided_remote, pr.s3.decided_remote);
  EXPECT_EQ(pr.trace_for("never-ran"), nullptr);
}

TEST_F(EngineEquivalence, CustomStepParticipates) {
  // A plugged-in heuristic: classifies nothing but proves custom steps
  // flow through context, execution and ledger like builtins.
  struct count_step final : inference_step {
    std::string_view name() const noexcept override { return "census"; }
    std::vector<std::string_view> inputs() const override { return {"rtt"}; }
    void run(step_context& ctx) override {
      (void)ctx.result.rtt.observations.size();  // touch the produced product
      ran = true;
    }
    bool ran = false;
  };
  const auto census = std::make_shared<count_step>();
  const auto pr = engine()
                      .with_step("port-capacity")
                      .with_step(census)
                      .build()
                      .run(s_->inputs());
  EXPECT_TRUE(census->ran);
  ASSERT_NE(pr.trace_for("census"), nullptr);
  EXPECT_EQ(pr.trace_for("census")->decided_local, 0u);
}

}  // namespace
