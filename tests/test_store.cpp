// The durable catalog snapshot format (opwat/serve/store.hpp).  Pins
//   - save -> load -> every query (counts, filters, group-by, ECDF,
//     pagination, diff_epochs) identical to the in-memory catalog, for
//     several seeds / scales / epoch counts;
//   - determinism: saving twice is byte-identical, save -> load -> save
//     is byte-identical, and incremental append_epoch produces exactly
//     the bytes of a full save;
//   - corruption safety: truncation at every section boundary and bit
//     flips across header / dictionary / column regions raise the typed
//     store_error (never UB — the suite runs under ASan/UBSan in CI);
//   - duplicate epoch labels are a typed catalog_error, on ingest and
//     on merging a file whose labels collide with in-memory epochs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/checksum.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using infer::peering_class;

constexpr peering_class k_classes[] = {peering_class::unknown, peering_class::local,
                                       peering_class::remote};
constexpr method_step k_steps[] = {method_step::none,          method_step::port_capacity,
                                   method_step::rtt_colo,      method_step::multi_ixp,
                                   method_step::private_links, method_step::rtt_threshold,
                                   method_step::traceroute_rtt};

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string read_bytes(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
}

void write_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

/// Doubles compare equal including the NaN sentinels the columns use.
bool same_double(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

/// Row equality across two catalogs: metro refs are dictionary-local, so
/// they compare by display name.
void expect_rows_equal(const serve::catalog& ca, const std::vector<serve::iface_row>& a,
                       const serve::catalog& cb,
                       const std::vector<serve::iface_row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ip.value(), b[i].ip.value()) << "row " << i;
    EXPECT_EQ(a[i].ixp, b[i].ixp) << "row " << i;
    EXPECT_EQ(a[i].asn.value, b[i].asn.value) << "row " << i;
    EXPECT_EQ(a[i].cls, b[i].cls) << "row " << i;
    EXPECT_EQ(a[i].step, b[i].step) << "row " << i;
    EXPECT_TRUE(same_double(a[i].rtt_min_ms, b[i].rtt_min_ms)) << "row " << i;
    EXPECT_EQ(a[i].feasible_facilities, b[i].feasible_facilities) << "row " << i;
    EXPECT_TRUE(same_double(a[i].port_gbps, b[i].port_gbps)) << "row " << i;
    EXPECT_EQ(ca.metro_name(a[i].metro), cb.metro_name(b[i].metro)) << "row " << i;
  }
}

/// Every query shape the fluent API offers, asked of both catalogs and
/// compared — the round-trip property.
void expect_catalogs_equivalent(const serve::catalog& a, const serve::catalog& b) {
  ASSERT_EQ(a.labels(), b.labels());
  ASSERT_EQ(a.metros(), b.metros());
  ASSERT_EQ(a.ixps().size(), b.ixps().size());
  for (std::size_t i = 0; i < a.ixps().size(); ++i) {
    EXPECT_EQ(a.ixps()[i].id, b.ixps()[i].id);
    EXPECT_EQ(a.ixps()[i].name, b.ixps()[i].name);
    EXPECT_EQ(a.ixps()[i].peering_lan, b.ixps()[i].peering_lan);
    EXPECT_EQ(a.ixps()[i].min_physical_capacity_gbps,
              b.ixps()[i].min_physical_capacity_gbps);
    EXPECT_EQ(a.metro_name(a.ixps()[i].metro), b.metro_name(b.ixps()[i].metro));
  }

  for (const auto& label : a.labels()) {
    const auto& ea = a.of(label);
    const auto& eb = b.of(label);
    ASSERT_EQ(ea.rows(), eb.rows()) << label;
    ASSERT_EQ(ea.blocks().size(), eb.blocks().size()) << label;
    for (std::size_t bi = 0; bi < ea.blocks().size(); ++bi) {
      const auto& ba = ea.blocks()[bi];
      const auto& bb = eb.blocks()[bi];
      EXPECT_EQ(ea.world_ixp(ba.ixp), eb.world_ixp(bb.ixp));
      EXPECT_EQ(ba.begin, bb.begin);
      EXPECT_EQ(ba.end, bb.end);
      ASSERT_EQ(ba.facilities.size(), bb.facilities.size());
      for (std::size_t fi = 0; fi < ba.facilities.size(); ++fi) {
        EXPECT_EQ(ba.facilities[fi].id, bb.facilities[fi].id);
        EXPECT_EQ(ba.facilities[fi].name, bb.facilities[fi].name);
        EXPECT_EQ(ba.facilities[fi].has_name, bb.facilities[fi].has_name);
        EXPECT_EQ(ba.facilities[fi].has_location, bb.facilities[fi].has_location);
        EXPECT_EQ(ba.facilities[fi].lat_deg, bb.facilities[fi].lat_deg);
        EXPECT_EQ(ba.facilities[fi].lon_deg, bb.facilities[fi].lon_deg);
      }
      for (const auto c : k_classes)
        EXPECT_EQ(ea.count(ba.ixp, c), eb.count(bb.ixp, c)) << label;
      for (const auto s : k_steps)
        EXPECT_EQ(ea.contribution(ba.ixp, s), eb.contribution(bb.ixp, s)) << label;
    }
    for (const auto c : k_classes) EXPECT_EQ(ea.total(c), eb.total(c)) << label;

    // Full row sets, canonical and RTT-sorted, plus pagination tiling.
    const auto qa = [&] { return serve::query(a).epoch(label); };
    const auto qb = [&] { return serve::query(b).epoch(label); };
    expect_rows_equal(a, qa().rows(), b, qb().rows());
    expect_rows_equal(a, qa().sort_by_rtt().rows(), b, qb().sort_by_rtt().rows());
    expect_rows_equal(a, qa().cls(peering_class::remote).page(3, 7).rows(), b,
                      qb().cls(peering_class::remote).page(3, 7).rows());
    EXPECT_EQ(qa().cls(peering_class::remote).count(),
              qb().cls(peering_class::remote).count());
    EXPECT_EQ(qa().rtt_between(0.0, 2.0).count(), qb().rtt_between(0.0, 2.0).count());

    // Every group-by shape.
    const auto groups_equal = [&](serve::query ga, serve::query gb) {
      const auto ra = ga.group_counts();
      const auto rb = gb.group_counts();
      ASSERT_EQ(ra.size(), rb.size()) << label;
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].key, rb[i].key) << label;
        EXPECT_EQ(ra[i].count, rb[i].count) << label;
      }
    };
    groups_equal(qa().by_ixp(), qb().by_ixp());
    groups_equal(qa().by_asn(), qb().by_asn());
    groups_equal(qa().by_metro(), qb().by_metro());
    groups_equal(qa().by_class(), qb().by_class());
    groups_equal(qa().cls(peering_class::remote).by_step(),
                 qb().cls(peering_class::remote).by_step());

    const auto ecdf_a = qa().cls(peering_class::remote).rtt_ecdf(12);
    const auto ecdf_b = qb().cls(peering_class::remote).rtt_ecdf(12);
    ASSERT_EQ(ecdf_a.size(), ecdf_b.size()) << label;
    for (std::size_t i = 0; i < ecdf_a.size(); ++i) {
      EXPECT_EQ(ecdf_a[i].upper_ms, ecdf_b[i].upper_ms);
      EXPECT_EQ(ecdf_a[i].cum_count, ecdf_b[i].cum_count);
      EXPECT_EQ(ecdf_a[i].fraction, ecdf_b[i].fraction);
    }
  }

  // Cross-epoch diffs between every consecutive label pair.
  const auto labels = a.labels();
  for (std::size_t i = 1; i < labels.size(); ++i) {
    const auto da = serve::diff_epochs(a, labels[i - 1], labels[i]);
    const auto db = serve::diff_epochs(b, labels[i - 1], labels[i]);
    expect_rows_equal(a, da.appeared, b, db.appeared);
    expect_rows_equal(a, da.disappeared, b, db.disappeared);
    ASSERT_EQ(da.reclassified.size(), db.reclassified.size());
    for (std::size_t r = 0; r < da.reclassified.size(); ++r) {
      EXPECT_EQ(da.reclassified[r].before.cls, db.reclassified[r].before.cls);
      EXPECT_EQ(da.reclassified[r].after.cls, db.reclassified[r].after.cls);
      EXPECT_EQ(da.reclassified[r].after.ip.value(),
                db.reclassified[r].after.ip.value());
    }
  }
}

/// Scenario + N perturbed pipeline runs, ingested as epochs e00..eNN.
/// Kept around so tests can replay ingest (append/merge determinism).
struct corpus {
  eval::scenario s;
  std::vector<infer::pipeline_result> prs;
  std::vector<std::string> labels;
  serve::catalog cat;

  static corpus build(std::uint64_t seed, std::size_t n_epochs, std::size_t n_ases,
                      std::size_t largest_ixp_members) {
    auto cfg = eval::small_scenario_config(seed);
    if (n_ases != 0) cfg.world.n_ases = n_ases;
    if (largest_ixp_members != 0) cfg.world.largest_ixp_members = largest_ixp_members;
    corpus c{eval::scenario::build(cfg), {}, {}, {}};
    auto pcfg = c.s.cfg.pipeline;
    for (std::size_t e = 0; e < n_epochs; ++e) {
      c.prs.push_back(c.s.run_inference(pcfg));
      c.labels.push_back("e0" + std::to_string(e));
      c.cat.ingest(c.s.w, c.s.view, c.prs.back(), c.labels.back());
      pcfg.seed += 1;  // each epoch is a genuinely different run
    }
    return c;
  }
};

class StoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    c_ = new corpus{corpus::build(91, 3, 0, 0)};
    path_ = temp_path("store_main.opwatc");
    c_->cat.save(path_);
    bytes_ = new std::string{read_bytes(path_)};
  }
  static void TearDownTestSuite() {
    delete bytes_;
    delete c_;
    bytes_ = nullptr;
    c_ = nullptr;
  }

  static corpus* c_;
  static std::string path_;
  static std::string* bytes_;  ///< the valid on-disk image, for mutation tests
};

corpus* StoreTest::c_ = nullptr;
std::string StoreTest::path_;
std::string* StoreTest::bytes_ = nullptr;

// --- round-trip property -----------------------------------------------------

TEST_F(StoreTest, RoundTripReproducesEveryQuery) {
  const auto loaded = serve::catalog::load(path_);
  // The deep audit (zone maps, permutations, count indexes, watermark
  // chain) must accept both sides before the query comparison runs.
  EXPECT_NO_THROW(c_->cat.audit());
  EXPECT_NO_THROW(loaded.audit());
  expect_catalogs_equivalent(c_->cat, loaded);
}

TEST_F(StoreTest, RoundTripOtherSeedsAndScales) {
  // Smaller worlds, different seeds, different epoch counts: the same
  // property must hold across the parameter space, including the
  // single-epoch store.
  struct sweep {
    std::uint64_t seed;
    std::size_t epochs, ases, members;
  };
  for (const auto& [seed, epochs, ases, members] :
       {sweep{7, 1, 300, 90}, sweep{131, 2, 400, 120}}) {
    const auto c = corpus::build(seed, epochs, ases, members);
    const auto p = temp_path("store_sweep_" + std::to_string(seed) + ".opwatc");
    c.cat.save(p);
    const auto loaded = serve::catalog::load(p);
    expect_catalogs_equivalent(c.cat, loaded);
  }
}

TEST_F(StoreTest, EmptyCatalogRoundTrips) {
  const serve::catalog empty;
  const auto p = temp_path("store_empty.opwatc");
  empty.save(p);
  const auto loaded = serve::catalog::load(p);
  EXPECT_EQ(loaded.epoch_count(), 0u);
  EXPECT_TRUE(loaded.labels().empty());
}

// --- byte-identity determinism ----------------------------------------------

TEST_F(StoreTest, SecondSaveIsByteIdentical) {
  const auto p = temp_path("store_again.opwatc");
  c_->cat.save(p);
  EXPECT_EQ(read_bytes(p), *bytes_);
}

TEST_F(StoreTest, SaveLoadSaveIsByteIdentical) {
  const auto loaded = serve::catalog::load(path_);
  const auto p = temp_path("store_reload.opwatc");
  loaded.save(p);
  EXPECT_EQ(read_bytes(p), *bytes_);
}

TEST_F(StoreTest, IncrementalAppendMatchesFullSave) {
  // Replay the ingest one epoch at a time, extending the file with
  // append_epoch after the initial save: the final file must be
  // byte-identical to the full save of the complete catalog.
  const auto p = temp_path("store_incremental.opwatc");
  serve::catalog inc;
  for (std::size_t e = 0; e < c_->prs.size(); ++e) {
    const auto eid = inc.ingest(c_->s.w, c_->s.view, c_->prs[e], c_->labels[e]);
    if (e == 0)
      inc.save(p);
    else
      inc.append_epoch(p, eid);
  }
  EXPECT_NO_THROW(inc.audit());
  EXPECT_EQ(read_bytes(p), *bytes_);
}

TEST_F(StoreTest, ResumeFromFileThenAppend) {
  // The longitudinal workflow: load yesterday's store, ingest one more
  // epoch, append it — the file again equals a full save.
  const auto p = temp_path("store_resume.opwatc");
  write_bytes(p, *bytes_);
  auto resumed = serve::catalog::load(p);
  auto pcfg = c_->s.cfg.pipeline;
  pcfg.seed += 99;
  const auto pr = c_->s.run_inference(pcfg);
  const auto eid = resumed.ingest(c_->s.w, c_->s.view, pr, "e99");
  resumed.append_epoch(p, eid);

  const auto full = temp_path("store_resume_full.opwatc");
  resumed.save(full);
  EXPECT_EQ(read_bytes(p), read_bytes(full));
  expect_catalogs_equivalent(resumed, serve::catalog::load(p));
}

// --- append prefix checking --------------------------------------------------

TEST_F(StoreTest, AppendRejectsWrongEpochPosition) {
  const auto p = temp_path("store_appendpos.opwatc");
  write_bytes(p, *bytes_);
  // The file already holds epochs 0..2; appending epoch 1 again is a
  // prefix mismatch, as is an epoch id the catalog does not have.
  try {
    c_->cat.append_epoch(p, 1);
    FAIL() << "expected store_error";
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::mismatch);
  }
  EXPECT_THROW(c_->cat.append_epoch(p, 57), std::out_of_range);
}

TEST_F(StoreTest, AppendRejectsForeignFile) {
  // A file whose epochs are NOT this catalog's prefix (different
  // labels) must be refused, not silently extended.
  const auto other = corpus::build(7, 1, 300, 90);
  serve::catalog relabelled;
  relabelled.ingest(other.s.w, other.s.view, other.prs[0], "foreign");
  const auto p = temp_path("store_foreign.opwatc");
  relabelled.save(p);

  serve::catalog two;
  two.ingest(other.s.w, other.s.view, other.prs[0], "mine");
  auto pcfg = other.s.cfg.pipeline;
  pcfg.seed += 1;
  const auto pr2 = other.s.run_inference(pcfg);
  const auto eid = two.ingest(other.s.w, other.s.view, pr2, "mine-2");
  try {
    two.append_epoch(p, eid);
    FAIL() << "expected store_error";
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::mismatch);
  }
}

// --- duplicate labels (typed) ------------------------------------------------

TEST_F(StoreTest, DuplicateIngestLabelIsTypedError) {
  serve::catalog cat;
  cat.ingest(c_->s.w, c_->s.view, c_->prs[0], "dup");
  EXPECT_THROW(cat.ingest(c_->s.w, c_->s.view, c_->prs[1], "dup"),
               serve::catalog_error);
  // catalog_error derives from std::invalid_argument, so pre-typed
  // call sites keep working.
  EXPECT_THROW(cat.ingest(c_->s.w, c_->s.view, c_->prs[1], "dup"),
               std::invalid_argument);
  EXPECT_EQ(cat.epoch_count(), 1u);
}

TEST_F(StoreTest, MergeCollidingLabelsIsTypedError) {
  auto loaded = serve::catalog::load(path_);
  // Merging the very file the catalog came from collides on every label.
  EXPECT_THROW(loaded.merge_from(path_), serve::catalog_error);
  EXPECT_EQ(loaded.epoch_count(), c_->cat.epoch_count());  // nothing merged
}

TEST_F(StoreTest, MergeIntoEmptyAndPopulatedCatalogs) {
  serve::catalog fresh;
  fresh.merge_from(path_);
  expect_catalogs_equivalent(c_->cat, fresh);

  // Merging into a catalog that already interned its own dictionaries
  // exercises the ref remapping path.
  serve::catalog busy;
  auto pcfg = c_->s.cfg.pipeline;
  pcfg.seed += 7;
  const auto pr = c_->s.run_inference(pcfg);
  busy.ingest(c_->s.w, c_->s.view, pr, "resident");
  busy.merge_from(path_);
  ASSERT_EQ(busy.epoch_count(), c_->cat.epoch_count() + 1);
  for (const auto& label : c_->cat.labels()) {
    const auto rows_orig = serve::query(c_->cat).epoch(label).rows();
    const auto rows_merged = serve::query(busy).epoch(label).rows();
    expect_rows_equal(c_->cat, rows_orig, busy, rows_merged);
  }
}

// --- corruption injection ----------------------------------------------------

/// Loading `bytes` (written to a scratch file) must raise the typed
/// store taxonomy — store_error or catalog_error — with a non-empty
/// message, and never crash (ASan/UBSan watches this suite in CI).
void expect_typed_load_failure(const std::string& bytes, const std::string& what) {
  const auto p = temp_path("store_corrupt.opwatc");
  write_bytes(p, bytes);
  try {
    const auto loaded = serve::catalog::load(p);
    FAIL() << "load accepted corrupt input: " << what << " (epochs "
           << loaded.epoch_count() << ")";
  } catch (const serve::store_error& e) {
    EXPECT_GT(std::string_view{e.what()}.size(), 10u) << what;
  } catch (const serve::catalog_error& e) {
    EXPECT_GT(std::string_view{e.what()}.size(), 10u) << what;
  }
}

TEST_F(StoreTest, TruncationAtEverySectionBoundaryFails) {
  const auto boundaries = serve::store_section_boundaries(*bytes_);
  ASSERT_GT(boundaries.size(), 3u);
  for (const auto b : boundaries) {
    if (b == bytes_->size()) continue;  // the full file is valid
    expect_typed_load_failure(bytes_->substr(0, b),
                              "truncated at section boundary " + std::to_string(b));
    // ... and mid-section-header / one byte short of the boundary.
    expect_typed_load_failure(bytes_->substr(0, b + 7),
                              "truncated inside section header after " +
                                  std::to_string(b));
  }
  for (std::size_t cut = 0; cut < serve::k_store_header_size; cut += 3)
    expect_typed_load_failure(bytes_->substr(0, cut),
                              "truncated inside file header at " + std::to_string(cut));
}

TEST_F(StoreTest, BitFlipsAnywhereFail) {
  const auto boundaries = serve::store_section_boundaries(*bytes_);
  // Candidate offsets: the whole header, every section header, and a
  // stride across every payload region (dictionaries, blocks, columns).
  std::vector<std::size_t> offsets;
  for (std::size_t o = 0; o < serve::k_store_header_size; ++o) offsets.push_back(o);
  for (const auto b : boundaries)
    for (std::size_t o = b; o < b + serve::k_store_section_header_size &&
                            o < bytes_->size();
         ++o)
      offsets.push_back(o);
  for (std::size_t o = 0; o < bytes_->size(); o += 31) offsets.push_back(o);

  for (const auto o : offsets) {
    for (const unsigned bit : {0u, 7u}) {
      std::string flipped = *bytes_;
      flipped[o] = static_cast<char>(static_cast<unsigned char>(flipped[o]) ^
                                     (1u << bit));
      expect_typed_load_failure(flipped, "bit " + std::to_string(bit) + " at offset " +
                                             std::to_string(o));
    }
  }
}

TEST_F(StoreTest, UnknownFormatVersionIsRejected) {
  // A well-formed header (valid CRC) from a future format version.
  std::string future = *bytes_;
  future[8] = 9;  // version u32 little-endian low byte
  const auto crc = util::crc32(future.data(), 16);
  for (int i = 0; i < 4; ++i)
    future[16 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  const auto p = temp_path("store_future.opwatc");
  write_bytes(p, future);
  try {
    (void)serve::catalog::load(p);
    FAIL() << "expected store_error";
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::bad_version);
    EXPECT_NE(std::string_view{e.what()}.find("version"), std::string_view::npos);
  }
}

TEST_F(StoreTest, MissingFileIsIoError) {
  try {
    (void)serve::catalog::load(temp_path("no_such_file.opwatc"));
    FAIL() << "expected store_error";
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::io);
  }
}

TEST_F(StoreTest, TrailingGarbageIsRejected) {
  expect_typed_load_failure(*bytes_ + std::string(13, '\0'), "trailing garbage");
}

// --- crc32 -------------------------------------------------------------------

TEST(Crc32, KnownVectorsAndChunking) {
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
  // Chunked == whole, via the seed parameter.
  const std::string_view s = "o peer, where art thou?";
  const auto whole = util::crc32(s);
  const auto first = util::crc32(s.substr(0, 9));
  EXPECT_EQ(util::crc32(s.substr(9), first), whole);
}

}  // namespace
