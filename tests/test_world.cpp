// Generator invariants: the ground truth world must be self-consistent,
// or validation would be meaningless.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "opwat/geo/metro.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::world;

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { w_ = new world::world{generate(tiny_config(11))}; }
  static void TearDownTestSuite() {
    delete w_;
    w_ = nullptr;
  }
  static world::world* w_;
};

world::world* WorldTest::w_ = nullptr;

TEST_F(WorldTest, EntitiesExist) {
  EXPECT_GT(w_->cities.size(), 0u);
  EXPECT_GT(w_->facilities.size(), 0u);
  EXPECT_EQ(w_->ixps.size(), 8u);
  EXPECT_EQ(w_->ases.size(), 260u);
  EXPECT_GT(w_->memberships.size(), 50u);
  EXPECT_GT(w_->routers.size(), 0u);
}

TEST_F(WorldTest, IdsAreDense) {
  for (std::size_t i = 0; i < w_->ixps.size(); ++i) EXPECT_EQ(w_->ixps[i].id, i);
  for (std::size_t i = 0; i < w_->ases.size(); ++i) EXPECT_EQ(w_->ases[i].id, i);
  for (std::size_t i = 0; i < w_->memberships.size(); ++i)
    EXPECT_EQ(w_->memberships[i].id, i);
  for (std::size_t i = 0; i < w_->routers.size(); ++i) EXPECT_EQ(w_->routers[i].id, i);
}

TEST_F(WorldTest, NoDuplicateMembershipPerAsIxp) {
  std::set<std::pair<as_id, ixp_id>> seen;
  for (const auto& m : w_->memberships)
    EXPECT_TRUE(seen.insert({m.member, m.ixp}).second)
        << "AS " << m.member << " member of IXP " << m.ixp << " twice";
}

TEST_F(WorldTest, InterfaceIpsUniqueAndInLan) {
  std::set<net::ipv4_addr> ips;
  for (const auto& m : w_->memberships) {
    EXPECT_TRUE(ips.insert(m.interface_ip).second);
    EXPECT_TRUE(w_->ixps[m.ixp].peering_lan.contains(m.interface_ip));
  }
}

TEST_F(WorldTest, RouteServerInsideLan) {
  for (const auto& x : w_->ixps) {
    EXPECT_TRUE(x.peering_lan.contains(x.route_server_ip));
    EXPECT_FALSE(x.facilities.empty());
  }
}

TEST_F(WorldTest, PeeringLansDisjoint) {
  for (const auto& a : w_->ixps)
    for (const auto& b : w_->ixps) {
      if (a.id == b.id) continue;
      EXPECT_FALSE(a.peering_lan.contains(b.peering_lan));
    }
}

TEST_F(WorldTest, LocalMembersAreColocated) {
  for (const auto& m : w_->memberships) {
    if (m.how != attachment::colocated) continue;
    const auto& as = w_->ases[m.member];
    // The member's AS occupies the attach facility...
    EXPECT_NE(std::find(as.facilities.begin(), as.facilities.end(), m.attach_facility),
              as.facilities.end());
    // ...which is a facility of the IXP...
    const auto& xf = w_->ixps[m.ixp].facilities;
    EXPECT_NE(std::find(xf.begin(), xf.end(), m.attach_facility), xf.end());
    // ...and the serving router is physically there.
    EXPECT_EQ(w_->routers[m.router].facility, m.attach_facility);
  }
}

TEST_F(WorldTest, LongCableMembersNotColocatedWithIxp) {
  for (const auto& m : w_->memberships) {
    if (m.how != attachment::long_cable && m.how != attachment::federation) continue;
    const auto& as = w_->ases[m.member];
    for (const auto f : w_->ixps[m.ixp].facilities)
      EXPECT_EQ(std::find(as.facilities.begin(), as.facilities.end(), f),
                as.facilities.end())
          << "long-cable member colocated with its IXP";
  }
}

TEST_F(WorldTest, ResellerMembershipsHaveVirtualPortsAndResellers) {
  for (const auto& m : w_->memberships) {
    if (m.how == attachment::reseller) {
      EXPECT_EQ(m.port, port_kind::virtual_reseller);
      ASSERT_TRUE(m.via.has_value());
      const auto& rs = w_->resellers[*m.via];
      EXPECT_NE(std::find(rs.ixps.begin(), rs.ixps.end(), m.ixp), rs.ixps.end());
    } else {
      EXPECT_EQ(m.port, port_kind::physical);
      EXPECT_FALSE(m.via.has_value());
    }
  }
}

TEST_F(WorldTest, FractionalPortsOnlyViaResellers) {
  for (const auto& m : w_->memberships) {
    const double cmin = w_->ixps[m.ixp].min_physical_capacity_gbps;
    if (m.port_capacity_gbps < cmin) EXPECT_EQ(m.how, attachment::reseller);
    if (m.how == attachment::colocated) EXPECT_GE(m.port_capacity_gbps, cmin);
  }
}

TEST_F(WorldTest, GroundTruthLabelMatchesDefinition) {
  for (const auto& m : w_->memberships)
    EXPECT_EQ(w_->truly_remote(m), m.how != attachment::colocated);
}

TEST_F(WorldTest, RouterOwnershipConsistent) {
  for (const auto& m : w_->memberships)
    EXPECT_EQ(w_->routers[m.router].owner, m.member);
}

TEST_F(WorldTest, PrivateLinksConnectDistinctColocatedAses) {
  for (const auto& pl : w_->private_links) {
    EXPECT_NE(pl.a, pl.b);
    EXPECT_EQ(w_->routers[pl.router_a].owner, pl.a);
    EXPECT_EQ(w_->routers[pl.router_b].owner, pl.b);
    EXPECT_EQ(w_->routers[pl.router_a].facility, pl.fac);
    // Endpoint addresses come from each AS's backbone.
    EXPECT_TRUE(w_->ases[pl.a].backbone.contains(pl.ip_a));
    EXPECT_TRUE(w_->ases[pl.b].backbone.contains(pl.ip_b));
  }
}

TEST_F(WorldTest, IndicesResolve) {
  for (const auto& m : w_->memberships) {
    const auto mid = w_->membership_by_interface(m.interface_ip);
    ASSERT_TRUE(mid);
    EXPECT_EQ(*mid, m.id);
    const auto rid = w_->router_by_interface(m.interface_ip);
    ASSERT_TRUE(rid);
    EXPECT_EQ(*rid, m.router);
    EXPECT_EQ(w_->ixp_of_lan_address(m.interface_ip), m.ixp);
  }
  for (const auto& as : w_->ases) {
    const auto id = w_->as_by_asn(as.asn);
    ASSERT_TRUE(id);
    EXPECT_EQ(*id, as.id);
  }
}

TEST_F(WorldTest, MembershipIndicesMatch) {
  std::size_t total = 0;
  for (const auto& x : w_->ixps) total += w_->memberships_of_ixp(x.id).size();
  EXPECT_EQ(total, w_->memberships.size());
  for (const auto& x : w_->ixps)
    for (const auto mid : w_->memberships_of_ixp(x.id))
      EXPECT_EQ(w_->memberships[mid].ixp, x.id);
}

TEST_F(WorldTest, Determinism) {
  const auto w2 = generate(tiny_config(11));
  EXPECT_EQ(w2.memberships.size(), w_->memberships.size());
  for (std::size_t i = 0; i < w2.memberships.size(); ++i) {
    EXPECT_EQ(w2.memberships[i].interface_ip, w_->memberships[i].interface_ip);
    EXPECT_EQ(w2.memberships[i].how, w_->memberships[i].how);
  }
}

TEST_F(WorldTest, DifferentSeedsDiffer) {
  const auto w2 = generate(tiny_config(12));
  bool any_difference = w2.memberships.size() != w_->memberships.size();
  for (std::size_t i = 0; !any_difference && i < w2.memberships.size(); ++i)
    any_difference = w2.memberships[i].member != w_->memberships[i].member;
  EXPECT_TRUE(any_difference);
}

TEST(WorldGen, RemoteShareTracksConfig) {
  auto cfg = tiny_config(3);
  cfg.n_ases = 500;
  cfg.n_ixps = 10;
  const auto w = generate(cfg);
  std::size_t remote = 0;
  for (const auto& m : w.memberships)
    if (w.truly_remote(m)) ++remote;
  const double share = static_cast<double>(remote) / static_cast<double>(w.memberships.size());
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.50);
}

TEST(WorldGen, WideAreaIxpsExistAtScale) {
  gen_config cfg = tiny_config(5);
  cfg.n_ixps = 40;
  cfg.n_ases = 800;
  cfg.wide_area_fraction = 0.5;  // force plenty
  const auto w = generate(cfg);
  std::size_t wide = 0;
  for (const auto& x : w.ixps) {
    std::vector<geo::geo_point> pts;
    for (const auto f : x.facilities) pts.push_back(w.facilities[f].location);
    if (geo::is_wide_area(pts)) ++wide;
  }
  EXPECT_GT(wide, 5u);
}

TEST(WorldGen, InvalidConfigThrows) {
  gen_config cfg;
  cfg.n_ixps = 0;
  EXPECT_THROW((void)generate(cfg), std::runtime_error);
}

// Property sweep: invariants hold across seeds.
class WorldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldSeedSweep, CoreInvariants) {
  const auto w = generate(tiny_config(GetParam()));
  std::set<net::ipv4_addr> ips;
  for (const auto& m : w.memberships) {
    EXPECT_TRUE(ips.insert(m.interface_ip).second);
    EXPECT_EQ(w.routers[m.router].owner, m.member);
    if (m.how == attachment::colocated)
      EXPECT_GE(m.port_capacity_gbps, w.ixps[m.ixp].min_physical_capacity_gbps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep, ::testing::Values(1, 2, 3, 21, 99));

}  // namespace
