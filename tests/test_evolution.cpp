#include <gtest/gtest.h>

#include "opwat/world/evolution.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::world;

gen_config evo_config(std::uint64_t seed, int months = 14) {
  auto cfg = tiny_config(seed);
  cfg.n_ases = 500;
  cfg.n_ixps = 10;
  cfg.largest_ixp_members = 150;
  cfg.months = months;
  return cfg;
}

TEST(Evolution, HistoryIsWellFormed) {
  const auto w = generate(evo_config(4));
  for (const auto& m : w.memberships) {
    EXPECT_GE(m.joined_month, 0);
    EXPECT_LE(m.joined_month, 14);
    if (m.left_month >= 0) EXPECT_GT(m.left_month, m.joined_month);
  }
}

TEST(Evolution, NoHistoryWhenMonthsZero) {
  const auto w = generate(evo_config(4, 0));
  for (const auto& m : w.memberships) {
    EXPECT_EQ(m.joined_month, 0);
    EXPECT_EQ(m.left_month, -1);
  }
}

TEST(Evolution, ActiveAtRespectsWindow) {
  const auto w = generate(evo_config(4));
  membership m;
  m.joined_month = 3;
  m.left_month = 8;
  EXPECT_FALSE(w.active_at(m, 2));
  EXPECT_TRUE(w.active_at(m, 3));
  EXPECT_TRUE(w.active_at(m, 7));
  EXPECT_FALSE(w.active_at(m, 8));  // departure month: already gone
}

TEST(Evolution, TimelineAccountingConsistent) {
  const auto w = generate(evo_config(9));
  const auto tl = timeline(w, 14, [&](const membership& m) { return w.truly_remote(m); });
  ASSERT_EQ(tl.size(), 15u);
  // Active counts evolve by joins - leaves.
  for (std::size_t t = 1; t < tl.size(); ++t) {
    EXPECT_EQ(tl[t].local_active,
              tl[t - 1].local_active + tl[t].local_joins - tl[t].local_leaves);
    EXPECT_EQ(tl[t].remote_active,
              tl[t - 1].remote_active + tl[t].remote_joins - tl[t].remote_leaves);
  }
}

TEST(Evolution, RemoteJoinsDominateLocalJoins) {
  // The paper's Fig. 12a finding: remote peers drive IXP growth (~2x the
  // local join counts).  Aggregate across the window to damp noise.
  const auto w = generate(evo_config(10));
  const auto tl = timeline(w, 14, [&](const membership& m) { return w.truly_remote(m); });
  std::size_t jl = 0, jr = 0;
  for (const auto& mc : tl) {
    jl += mc.local_joins;
    jr += mc.remote_joins;
  }
  EXPECT_GT(jr, jl) << "remote joins should outnumber local joins";
}

TEST(Evolution, SwitchesMaterialized) {
  auto cfg = evo_config(12);
  cfg.monthly_remote_to_local_rate = 0.01;  // force a visible count
  const auto w = generate(cfg);
  EXPECT_GT(count_remote_to_local_switches(w), 0u);
}

TEST(Evolution, SwitchCreatesColocatedRejoin) {
  auto cfg = evo_config(12);
  cfg.monthly_remote_to_local_rate = 0.01;
  const auto w = generate(cfg);
  // Every switch pair: remote leaves at t, colocated joins at t.
  for (const auto& m : w.memberships) {
    if (m.joined_month == 0 || m.how != attachment::colocated) continue;
    for (const auto& old : w.memberships) {
      if (old.member == m.member && old.ixp == m.ixp && old.id != m.id &&
          is_remote(old.how) && old.left_month == m.joined_month) {
        // The re-join must be properly colocated.
        const auto& as = w.ases[m.member];
        EXPECT_NE(std::find(as.facilities.begin(), as.facilities.end(),
                            m.attach_facility),
                  as.facilities.end());
      }
    }
  }
}

TEST(Evolution, TimelineWithCustomLabelFunction) {
  const auto w = generate(evo_config(13));
  // Label everything local: remote columns must be zero.
  const auto tl = timeline(w, 14, [](const membership&) { return false; });
  for (const auto& mc : tl) {
    EXPECT_EQ(mc.remote_active, 0u);
    EXPECT_EQ(mc.remote_joins, 0u);
  }
}

class EvolutionSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvolutionSeedSweep, JoinsNeverExceedMembershipCount) {
  const auto w = generate(evo_config(GetParam()));
  const auto tl = timeline(w, 14, [&](const membership& m) { return w.truly_remote(m); });
  std::size_t joins = 0, leaves = 0;
  for (const auto& mc : tl) {
    joins += mc.local_joins + mc.remote_joins;
    leaves += mc.local_leaves + mc.remote_leaves;
  }
  EXPECT_LE(joins, w.memberships.size());
  EXPECT_LE(leaves, w.memberships.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvolutionSeedSweep, ::testing::Values(1, 7, 23, 77));

}  // namespace
