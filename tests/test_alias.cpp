#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "opwat/alias/resolver.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::alias;

class AliasTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new world::world{world::generate(world::tiny_config(71))};
  }
  static void TearDownTestSuite() { delete w_; }

  /// All interfaces of a router with at least `n` interfaces.
  static const world::router* router_with_ifaces(std::size_t n) {
    for (const auto& r : w_->routers)
      if (r.interfaces.size() >= n) return &r;
    return nullptr;
  }
  static world::world* w_;
};

world::world* AliasTest::w_ = nullptr;

TEST_F(AliasTest, PerfectRecallRecoversRouters) {
  const resolver r{*w_, {.recall = 1.0, .false_merge = 0.0}, 1};
  const auto* rt = router_with_ifaces(3);
  ASSERT_TRUE(rt);
  const auto groups = r.resolve(rt->interfaces);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), rt->interfaces.size());
}

TEST_F(AliasTest, ZeroRecallKeepsSingletons) {
  const resolver r{*w_, {.recall = 0.0, .false_merge = 0.0}, 1};
  const auto* rt = router_with_ifaces(3);
  ASSERT_TRUE(rt);
  const auto groups = r.resolve(rt->interfaces);
  EXPECT_EQ(groups.size(), rt->interfaces.size());
}

TEST_F(AliasTest, NoFalseMergeAcrossRouters) {
  const resolver r{*w_, {.recall = 1.0, .false_merge = 0.0}, 1};
  // Interfaces of two different routers of two different ASes.
  std::vector<net::ipv4_addr> ifaces;
  world::as_id owner_a = world::k_invalid;
  for (const auto& rt : w_->routers) {
    if (rt.interfaces.size() < 2) continue;
    if (owner_a == world::k_invalid) {
      owner_a = rt.owner;
      ifaces.insert(ifaces.end(), rt.interfaces.begin(), rt.interfaces.end());
    } else if (rt.owner != owner_a) {
      ifaces.insert(ifaces.end(), rt.interfaces.begin(), rt.interfaces.end());
      break;
    }
  }
  const auto groups = r.resolve(ifaces);
  EXPECT_EQ(groups.size(), 2u);
  // Each group must be homogeneous in ground truth.
  for (const auto& g : groups) {
    std::set<world::router_id> rids;
    for (const auto ip : g) {
      const auto rid = w_->router_by_interface(ip);
      ASSERT_TRUE(rid);
      rids.insert(*rid);
    }
    EXPECT_EQ(rids.size(), 1u);
  }
}

TEST_F(AliasTest, GroupsPartitionTheInput) {
  const resolver r{*w_, resolver_config{}, 5};
  std::vector<net::ipv4_addr> ifaces;
  for (std::size_t i = 0; i < 6 && i < w_->routers.size(); ++i)
    for (const auto ip : w_->routers[i].interfaces) ifaces.push_back(ip);
  const auto groups = r.resolve(ifaces);
  std::set<net::ipv4_addr> seen;
  std::size_t total = 0;
  for (const auto& g : groups) {
    total += g.size();
    for (const auto ip : g) EXPECT_TRUE(seen.insert(ip).second) << "duplicate in groups";
  }
  std::set<net::ipv4_addr> uniq{ifaces.begin(), ifaces.end()};
  EXPECT_EQ(total, uniq.size());
}

TEST_F(AliasTest, DeterministicAcrossCallsAndOrder) {
  const resolver r{*w_, resolver_config{}, 9};
  const auto* rt = router_with_ifaces(3);
  ASSERT_TRUE(rt);
  auto shuffled = rt->interfaces;
  std::reverse(shuffled.begin(), shuffled.end());
  const auto g1 = r.resolve(rt->interfaces);
  const auto g2 = r.resolve(shuffled);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_EQ(g1[i], g2[i]);
}

TEST_F(AliasTest, UnknownInterfacesBecomeSingletons) {
  const resolver r{*w_, {.recall = 1.0, .false_merge = 0.0}, 2};
  const std::vector<net::ipv4_addr> ifaces{net::ipv4_addr{198, 51, 100, 1},
                                           net::ipv4_addr{198, 51, 100, 2}};
  const auto groups = r.resolve(ifaces);
  EXPECT_EQ(groups.size(), 2u);
}

TEST_F(AliasTest, KaparLikeTradesPrecisionForRecall) {
  const auto k = kapar_like();
  const resolver_config midar{};
  EXPECT_GT(k.recall, midar.recall);
  EXPECT_GT(k.false_merge, midar.false_merge);
}

// Property: duplicate inputs never crash and dedupe.
TEST_F(AliasTest, DuplicateInputsDeduplicated) {
  const resolver r{*w_, resolver_config{}, 3};
  const auto* rt = router_with_ifaces(2);
  ASSERT_TRUE(rt);
  std::vector<net::ipv4_addr> doubled = rt->interfaces;
  doubled.insert(doubled.end(), rt->interfaces.begin(), rt->interfaces.end());
  const auto groups = r.resolve(doubled);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, rt->interfaces.size());
}

class AliasRecallSweep : public ::testing::TestWithParam<double> {};

TEST_P(AliasRecallSweep, GroupCountDecreasesWithRecall) {
  const auto w = world::generate(world::tiny_config(81));
  std::vector<net::ipv4_addr> ifaces;
  for (const auto& rt : w.routers)
    for (const auto ip : rt.interfaces) ifaces.push_back(ip);
  ifaces.resize(std::min<std::size_t>(ifaces.size(), 120));

  const resolver lo{w, {.recall = 0.0, .false_merge = 0.0}, 4};
  const resolver hi{w, {.recall = GetParam(), .false_merge = 0.0}, 4};
  EXPECT_LE(hi.resolve(ifaces).size(), lo.resolve(ifaces).size());
}

INSTANTIATE_TEST_SUITE_P(Recalls, AliasRecallSweep,
                         ::testing::Values(0.3, 0.6, 0.8, 0.95, 1.0));

}  // namespace
