#include <gtest/gtest.h>

#include <cmath>

#include "opwat/geo/speed_model.hpp"
#include "opwat/measure/latency_model.hpp"

namespace {

using namespace opwat::geo;

TEST(SpeedModel, VMaxIsFourNinthsC) {
  EXPECT_NEAR(kVMaxKmPerMs, 4.0 / 9.0 * 299.792458, 1e-9);
}

TEST(SpeedModel, Fig7OuterRadius) {
  // The paper's worked example: RTT_min = 4 ms -> d_max = 532 km.
  const auto ring = feasible_ring(4.0);
  EXPECT_NEAR(ring.d_max_km, 532.0, 2.0);
}

TEST(SpeedModel, Fig7InnerRadius) {
  // Same example: d_min ~= 299 km from the calibrated v_min fit.
  const auto ring = feasible_ring(4.0);
  EXPECT_NEAR(ring.d_min_km, 299.0, 6.0);
}

TEST(SpeedModel, VMinBelowKneeIsZero) {
  EXPECT_DOUBLE_EQ(v_min_km_per_ms(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v_min_km_per_ms(10.0), 0.0);  // below e^3 ~ 20 km
  EXPECT_GT(v_min_km_per_ms(50.0), 0.0);
}

TEST(SpeedModel, VMinClampedBelowVMax) {
  // Without clamping the log fit would exceed v_max near ~2,500 km.
  for (const double d : {100.0, 1000.0, 5000.0, 20000.0})
    EXPECT_LT(v_min_km_per_ms(d), kVMaxKmPerMs);
}

TEST(SpeedModel, VMinMonotoneNondecreasing) {
  double prev = 0.0;
  for (double d = 10.0; d < 20000.0; d *= 1.5) {
    const double v = v_min_km_per_ms(d);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SpeedModel, RingZeroRttIsDegenerate) {
  const auto ring = feasible_ring(0.0);
  EXPECT_DOUBLE_EQ(ring.d_min_km, 0.0);
  EXPECT_DOUBLE_EQ(ring.d_max_km, 0.0);
  EXPECT_TRUE(ring.contains(0.0));
}

TEST(SpeedModel, NegativeRttTreatedAsZero) {
  const auto ring = feasible_ring(-3.0);
  EXPECT_DOUBLE_EQ(ring.d_max_km, 0.0);
}

TEST(SpeedModel, SmallRttHasNoInnerExclusion) {
  // Below ~1.5 ms the minimum-speed bound cannot exclude nearby targets.
  const auto ring = feasible_ring(0.1);
  EXPECT_DOUBLE_EQ(ring.d_min_km, 0.0);
  EXPECT_GT(ring.d_max_km, 10.0);
}

TEST(SpeedModel, RttDistanceBoundsConsistent) {
  EXPECT_DOUBLE_EQ(min_rtt_ms_for_distance(0.0), 0.0);
  EXPECT_NEAR(min_rtt_ms_for_distance(kVMaxKmPerMs), 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(max_rtt_ms_for_distance(10.0)));  // below knee
  EXPECT_GT(max_rtt_ms_for_distance(500.0), min_rtt_ms_for_distance(500.0));
}

// Property: the ring implied by any RTT always contains the distance a
// packet travelling at an admissible speed would cover.
class RingContainsAdmissibleDistances : public ::testing::TestWithParam<double> {};

TEST_P(RingContainsAdmissibleDistances, Contains) {
  const double rtt = GetParam();
  const auto ring = feasible_ring(rtt);
  // Fastest admissible: v_max.
  EXPECT_TRUE(ring.contains(ring.d_max_km));
  // A mid-speed path.
  const double d_mid = 0.7 * kVMaxKmPerMs * rtt;
  if (v_min_km_per_ms(d_mid) * rtt <= d_mid) EXPECT_TRUE(ring.contains(d_mid));
  // Ring is well-formed.
  EXPECT_LE(ring.d_min_km, ring.d_max_km);
  EXPECT_GE(ring.d_min_km, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rtts, RingContainsAdmissibleDistances,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 15.0, 40.0, 120.0));

// Property: the ground-truth latency model never produces RTTs outside
// the feasible envelope Step 3 assumes — the core soundness link between
// the simulator and the methodology.
class LatencyEnvelope : public ::testing::TestWithParam<double> {};

TEST_P(LatencyEnvelope, BaseRttWithinEnvelope) {
  const double d = GetParam();
  const opwat::measure::latency_model lat{1234};
  const geo_point a{50.0, 8.0};
  for (int trial = 0; trial < 25; ++trial) {
    const geo_point b = offset_km(a, trial * 14.0, d);
    const opwat::measure::net_point pa{a, std::nullopt}, pb{b, std::nullopt};
    const double rtt = lat.base_rtt_ms(pa, pb, trial);
    // Never faster than v_max over the geodesic...
    EXPECT_GE(rtt, d / kVMaxKmPerMs) << "d=" << d;
    // ...and the implied ring must contain the true distance.
    const auto ring = feasible_ring(rtt);
    EXPECT_TRUE(ring.contains(d)) << "d=" << d << " rtt=" << rtt << " ring=["
                                  << ring.d_min_km << "," << ring.d_max_km << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, LatencyEnvelope,
                         ::testing::Values(2.0, 30.0, 80.0, 200.0, 600.0, 1500.0,
                                           4000.0, 9000.0));

}  // namespace
