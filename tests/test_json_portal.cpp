// JSON writer and the portal snapshot exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "opwat/eval/portal.hpp"
#include "opwat/util/json.hpp"

namespace {

using namespace opwat;
using util::json_escape;
using util::json_writer;

TEST(JsonEscape, PassesPlainText) { EXPECT_EQ(json_escape("hello"), "hello"); }

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(JsonWriter, EmptyObject) {
  json_writer w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, ObjectWithMixedValues) {
  json_writer w;
  w.begin_object();
  w.key("s").value("x");
  w.key("i").value(42);
  w.key("d").value(1.5);
  w.key("b").value(true);
  w.key("n").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"s":"x","i":42,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  json_writer w;
  w.begin_object();
  w.key("list").begin_array();
  w.value(1).value(2);
  w.begin_object().key("k").value("v").end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2,{"k":"v"}]})");
}

TEST(JsonWriter, TopLevelArray) {
  json_writer w;
  w.begin_array().value("a").value("b").end_array();
  EXPECT_EQ(w.str(), R"(["a","b"])");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  json_writer w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, IncompleteIsFlagged) {
  json_writer w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
}

// --- misuse is rejected instead of silently emitting invalid JSON ----------

TEST(JsonWriterMisuse, KeyOutsideObjectThrows) {
  {
    json_writer w;
    EXPECT_THROW(w.key("k"), std::logic_error);  // top level
  }
  {
    json_writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // inside an array
  }
}

TEST(JsonWriterMisuse, DoubleKeyThrows) {
  json_writer w;
  w.begin_object();
  w.key("a");
  EXPECT_THROW(w.key("b"), std::logic_error);
}

TEST(JsonWriterMisuse, ValueInObjectWithoutKeyThrows) {
  json_writer w;
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);
  EXPECT_THROW(w.begin_array(), std::logic_error);
  EXPECT_THROW(w.begin_object(), std::logic_error);
  EXPECT_THROW(w.null(), std::logic_error);
}

TEST(JsonWriterMisuse, DanglingKeyAtEndThrows) {
  json_writer w;
  w.begin_object();
  w.key("orphan");
  EXPECT_THROW(w.end_object(), std::logic_error);
  // Supplying the value heals the writer.
  w.value(1).end_object();
  EXPECT_EQ(w.str(), R"({"orphan":1})");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriterMisuse, MismatchedEndThrows) {
  {
    json_writer w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
  {
    json_writer w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
  {
    json_writer w;
    EXPECT_THROW(w.end_object(), std::logic_error);  // nothing open
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
}

TEST(JsonWriterMisuse, WritesAfterCompleteDocumentThrow) {
  json_writer w;
  w.begin_object().end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_THROW(w.value(1), std::logic_error);
  EXPECT_THROW(w.begin_object(), std::logic_error);
  EXPECT_THROW(w.begin_array(), std::logic_error);
  EXPECT_EQ(w.str(), "{}");  // the finished document is untouched
}

class PortalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(55))};
    pr_ = new infer::pipeline_result{s_->run_inference()};
  }
  static void TearDownTestSuite() {
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
};

eval::scenario* PortalTest::s_ = nullptr;
infer::pipeline_result* PortalTest::pr_ = nullptr;

TEST_F(PortalTest, SnapshotContainsEveryScopedIxp) {
  const auto doc = eval::portal_snapshot_json(*s_, *pr_, {.snapshot_label = "t-1"});
  EXPECT_NE(doc.find(R"("snapshot":"t-1")"), std::string::npos);
  for (const auto x : pr_->scope)
    EXPECT_NE(doc.find("\"" + s_->w.ixps[x].name + "\""), std::string::npos)
        << s_->w.ixps[x].name;
}

TEST_F(PortalTest, TotalsMatchInferenceMap) {
  const auto doc = eval::portal_snapshot_json(*s_, *pr_);
  const auto expect_count = [&](const char* key, std::size_t n) {
    const std::string needle = std::string{"\""} + key + "\":" + std::to_string(n);
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  };
  expect_count("local", pr_->inferences.count(infer::peering_class::local));
  expect_count("remote", pr_->inferences.count(infer::peering_class::remote));
}

TEST_F(PortalTest, InterfacesCarryClassAndEvidence) {
  const auto doc = eval::portal_snapshot_json(*s_, *pr_);
  EXPECT_NE(doc.find(R"("class":"local")"), std::string::npos);
  EXPECT_NE(doc.find(R"("class":"remote")"), std::string::npos);
  EXPECT_NE(doc.find(R"("evidence":)"), std::string::npos);
  EXPECT_NE(doc.find(R"("rtt_min_ms":)"), std::string::npos);
}

TEST_F(PortalTest, OptionsTrimSections) {
  eval::portal_options opt;
  opt.include_interfaces = false;
  opt.include_facilities = false;
  const auto doc = eval::portal_snapshot_json(*s_, *pr_, opt);
  EXPECT_EQ(doc.find(R"("members":)"), std::string::npos);
  EXPECT_EQ(doc.find(R"("facilities":)"), std::string::npos);
}

TEST_F(PortalTest, GeographicFootprintIncluded) {
  const auto doc = eval::portal_snapshot_json(*s_, *pr_);
  EXPECT_NE(doc.find(R"("lat":)"), std::string::npos);
  EXPECT_NE(doc.find(R"("lon":)"), std::string::npos);
}

}  // namespace
