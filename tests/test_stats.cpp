#include <gtest/gtest.h>

#include "opwat/util/stats.hpp"

namespace {

using namespace opwat::util;

TEST(Ecdf, EmptyEvaluatesToZero) {
  ecdf e;
  EXPECT_EQ(e.at(5.0), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Ecdf, BasicFractions) {
  ecdf e{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(Ecdf, AddKeepsOrderIndependence) {
  ecdf e;
  e.add(3.0);
  e.add(1.0);
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.at(1.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 3.0);
}

TEST(Ecdf, QuantileNearestRank) {
  ecdf e{{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50);
}

TEST(Ecdf, QuantileOnEmptyThrows) {
  ecdf e;
  EXPECT_THROW((void)e.quantile(0.5), std::invalid_argument);
}

TEST(Ecdf, CurveIsMonotone) {
  ecdf e{{5, 1, 3, 3, 2, 8}};
  const auto c = e.curve();
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1].first, c[i].first);
    EXPECT_LT(c[i - 1].second, c[i].second);
  }
  EXPECT_DOUBLE_EQ(c.back().second, 1.0);
}

TEST(Median, OddAndEven) {
  const double odd[] = {5, 1, 9};
  EXPECT_DOUBLE_EQ(median(odd), 5);
  const double even[] = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Summarize, Basics) {
  const double v[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.p90, 9);
}

TEST(Summarize, EmptyIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Histogram, BinningAndClamping) {
  histogram h{0.0, 10.0, 5};
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(15.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW((histogram{0.0, 0.0, 5}), std::invalid_argument);
  EXPECT_THROW((histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(CategoryCounter, CountsAndFractions) {
  category_counter c;
  c.add("local", 3);
  c.add("remote");
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.count("local"), 3u);
  EXPECT_EQ(c.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(c.fraction("remote"), 0.25);
}

TEST(CategoryCounter, EmptyFractionIsZero) {
  category_counter c;
  EXPECT_DOUBLE_EQ(c.fraction("x"), 0.0);
}

// Property: ECDF at its own quantile is at least q.
class EcdfQuantileProperty : public ::testing::TestWithParam<double> {};

TEST_P(EcdfQuantileProperty, AtQuantileGeQ) {
  ecdf e{{0.3, 1.7, 2.2, 2.2, 5.9, 8.8, 9.1, 12.0}};
  const double q = GetParam();
  EXPECT_GE(e.at(e.quantile(q)), q - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, EcdfQuantileProperty,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0));

}  // namespace
