// Latency model, vantage points, ping campaign and Y.1731 matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "opwat/geo/speed_model.hpp"
#include "opwat/measure/ping.hpp"
#include "opwat/measure/vantage.hpp"
#include "opwat/measure/y1731.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::measure;

TEST(LatencyModel, DeterministicPerPair) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, std::nullopt};
  const net_point b{{52.0, 13.0}, std::nullopt};
  EXPECT_DOUBLE_EQ(lat.base_rtt_ms(a, b), lat.base_rtt_ms(a, b));
}

TEST(LatencyModel, Symmetric) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, std::nullopt};
  const net_point b{{40.0, -74.0}, std::nullopt};
  EXPECT_DOUBLE_EQ(lat.base_rtt_ms(a, b), lat.base_rtt_ms(b, a));
}

TEST(LatencyModel, PathTagChangesRtt) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, std::nullopt};
  const net_point b{{48.0, 2.0}, std::nullopt};
  EXPECT_NE(lat.base_rtt_ms(a, b, 0), lat.base_rtt_ms(a, b, 1));
}

TEST(LatencyModel, SameFacilityIsSubMillisecond) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, 3u};
  const net_point b{{50.0, 8.0}, 3u};
  const double rtt = lat.base_rtt_ms(a, b);
  EXPECT_GT(rtt, 0.0);
  EXPECT_LT(rtt, 1.0);
}

TEST(LatencyModel, LongerDistanceSlower) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, std::nullopt};
  const net_point near_pt{geo::offset_km({50.0, 8.0}, 90, 100), std::nullopt};
  const net_point far{geo::offset_km({50.0, 8.0}, 90, 5000), std::nullopt};
  EXPECT_LT(lat.base_rtt_ms(a, near_pt), lat.base_rtt_ms(a, far));
}

TEST(LatencyModel, SamplesNeverBelowBase) {
  const latency_model lat{55};
  const net_point a{{50.0, 8.0}, std::nullopt};
  const net_point b{{51.0, 9.0}, std::nullopt};
  const double base = lat.base_rtt_ms(a, b);
  util::rng r{9};
  for (int i = 0; i < 200; ++i) EXPECT_GE(lat.sample_rtt_ms(a, b, r), base);
}

TEST(Vantage, GeneratedPopulationLooksRight) {
  const auto w = world::generate(world::tiny_config(21));
  vp_config cfg;
  const auto vps = make_vantage_points(w, cfg, util::rng{3});
  std::size_t lgs = 0, atlas = 0, dead = 0, mgmt = 0;
  for (const auto& vp : vps) {
    if (vp.type == vp_type::looking_glass) {
      ++lgs;
      EXPECT_TRUE(vp.in_peering_lan);
      EXPECT_TRUE(vp.alive);
    } else {
      ++atlas;
      EXPECT_FALSE(vp.in_peering_lan);
      if (!vp.alive) ++dead;
      if (vp.in_mgmt_lan) {
        ++mgmt;
        EXPECT_GE(vp.mgmt_extra_ms, cfg.mgmt_extra_ms_lo);
      }
    }
    EXPECT_LT(vp.ixp, w.ixps.size());
  }
  std::size_t lg_ixps = 0;
  for (const auto& x : w.ixps)
    if (x.has_looking_glass) ++lg_ixps;
  EXPECT_EQ(lgs, lg_ixps);
  EXPECT_GT(atlas, 0u);
}

class PingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new world::world{world::generate(world::tiny_config(31))};
    lat_ = new latency_model{77};
    vps_ = new std::vector<vantage_point>{
        make_vantage_points(*w_, vp_config{}, util::rng{5})};
  }
  static void TearDownTestSuite() {
    delete w_;
    delete lat_;
    delete vps_;
  }
  static std::vector<ping_target> all_targets() {
    std::vector<ping_target> t;
    for (const auto& m : w_->memberships) t.push_back({m.interface_ip, m.ixp});
    return t;
  }
  static world::world* w_;
  static latency_model* lat_;
  static std::vector<vantage_point>* vps_;
};

world::world* PingTest::w_ = nullptr;
latency_model* PingTest::lat_ = nullptr;
std::vector<vantage_point>* PingTest::vps_ = nullptr;

TEST_F(PingTest, CampaignProducesMeasurements) {
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                   util::rng{1});
  EXPECT_FALSE(c.measurements.empty());
  std::size_t responsive = 0;
  for (const auto& pm : c.measurements) {
    EXPECT_EQ(pm.samples_total, 24);
    if (pm.responsive) {
      ++responsive;
      EXPECT_GT(pm.rtt_min_ms, 0.0);
      EXPECT_GT(pm.samples_kept, 0);
      EXPECT_TRUE(std::isfinite(pm.rtt_min_ms));
    }
  }
  EXPECT_GT(responsive, c.measurements.size() / 2);
}

TEST_F(PingTest, VpOnlyPingsItsOwnIxp) {
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                   util::rng{1});
  for (const auto& pm : c.measurements) EXPECT_EQ((*vps_)[pm.vp_index].ixp, pm.ixp);
}

TEST_F(PingTest, LgRoundingYieldsIntegerRtts) {
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                   util::rng{1});
  for (const auto& pm : c.measurements) {
    if (!pm.responsive) continue;
    const auto& vp = (*vps_)[pm.vp_index];
    if (vp.rounds_rtt_up) {
      EXPECT_DOUBLE_EQ(pm.rtt_min_ms, std::ceil(pm.rtt_min_ms));
      EXPECT_GE(pm.rtt_min_ms, 1.0);
    }
  }
}

TEST_F(PingTest, MgmtLanProbesInflated) {
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                   util::rng{1});
  for (std::size_t vi = 0; vi < vps_->size(); ++vi) {
    const auto& vp = (*vps_)[vi];
    if (!vp.alive) continue;
    if (vp.in_mgmt_lan)
      EXPECT_GE(c.route_server_rtt_ms[vi], 1.0)
          << "management-LAN probe must fail the route-server filter";
  }
}

TEST_F(PingTest, LocalMembersFastFromTheirIxpLg) {
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                   util::rng{1});
  for (const auto& pm : c.measurements) {
    if (!pm.responsive) continue;
    const auto& vp = (*vps_)[pm.vp_index];
    if (vp.type != vp_type::looking_glass) continue;
    const auto mid = w_->membership_by_interface(pm.target);
    ASSERT_TRUE(mid);
    const auto& m = w_->memberships[*mid];
    // A local member attached at the LG's own facility answers fast.
    if (m.how == world::attachment::colocated && m.attach_facility == vp.facility)
      EXPECT_LE(pm.rtt_min_ms, 2.0);
  }
}

TEST_F(PingTest, DeterministicCampaign) {
  const auto c1 = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                    util::rng{42});
  const auto c2 = run_ping_campaign(*w_, *lat_, *vps_, all_targets(), ping_config{},
                                    util::rng{42});
  ASSERT_EQ(c1.measurements.size(), c2.measurements.size());
  for (std::size_t i = 0; i < c1.measurements.size(); ++i)
    EXPECT_DOUBLE_EQ(c1.measurements[i].rtt_min_ms, c2.measurements[i].rtt_min_ms);
}

TEST_F(PingTest, UnknownTargetUnresponsive) {
  std::vector<ping_target> targets{{net::ipv4_addr{203, 0, 113, 7}, 0}};
  const auto c = run_ping_campaign(*w_, *lat_, *vps_, targets, ping_config{},
                                   util::rng{1});
  for (const auto& pm : c.measurements) EXPECT_FALSE(pm.responsive);
}

TEST(Y1731, MatrixCoversAllPairs) {
  const auto w = world::generate(world::tiny_config(41));
  const latency_model lat{5};
  // Find an IXP with at least 2 facilities.
  for (const auto& x : w.ixps) {
    if (x.facilities.size() < 2) continue;
    const auto m = facility_delay_matrix(w, lat, x.id, 9, util::rng{1});
    const auto n = x.facilities.size();
    EXPECT_EQ(m.size(), n * (n - 1) / 2);
    for (const auto& d : m) {
      EXPECT_GT(d.median_rtt_ms, 0.0);
      EXPECT_GE(d.distance_km, 0.0);
      // Median RTT respects the physical floor.
      EXPECT_GE(d.median_rtt_ms, d.distance_km / geo::kVMaxKmPerMs);
    }
    return;
  }
  GTEST_SKIP() << "no multi-facility IXP in tiny world";
}

}  // namespace
