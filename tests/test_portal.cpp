// Portal server, protocol and workload (opwat/portal/).  Pins:
//   - wire round-trips: encode ∘ decode = id for randomized requests and
//     responses (property test over util::rng draws);
//   - malformed input taxonomy: truncation at every byte boundary,
//     oversized prefixes, bad version/op/dim, trailing bytes — each maps
//     to its typed portal_errc, mirroring the store_errc style;
//   - server integration: every op served over loopback matches the
//     equivalent direct serve::query against the same snapshot;
//   - result cache: hit on repeat, invalidated by epoch publish, and the
//     latest-epoch selector re-resolves after a publish;
//   - admission control, made deterministic with the before_execute test
//     hook: a full queue and an exceeded pipeline cap shed with typed
//     `overloaded` responses immediately — never a hang;
//   - graceful shutdown: stop() drains every admitted request, and a
//     start/serve/stop cycle leaks no file descriptors;
//   - concurrent clients racing an epoch-publishing writer (the TSan CI
//     lane runs this suite): every response is a consistent snapshot;
//   - workload determinism: same seed ⇒ byte-identical request stream;
//   - write-side robustness: send_all never throws and honors its
//     deadline against a stalled peer, a client that pipelines without
//     reading is dropped without wedging the acceptor, and
//     client::receive's timeout is one deadline even under trickled
//     bytes.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <map>
#include <thread>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/net/tcp.hpp"
#include "opwat/portal/client.hpp"
#include "opwat/portal/protocol.hpp"
#include "opwat/portal/server.hpp"
#include "opwat/portal/workload.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/util/bounded_queue.hpp"
#include "opwat/util/latency.hpp"
#include "opwat/util/rng.hpp"

namespace {

using namespace opwat;
using namespace opwat::portal;

// ---------------------------------------------------------------------------
// Shared fixture: one small scenario + a few pre-computed pipeline
// results, so server tests spend their time in the portal, not the
// inference pipeline.

struct corpus {
  static constexpr std::size_t k_epochs = 4;
  eval::scenario s;
  std::vector<infer::pipeline_result> prs;

  static corpus build() {
    auto cfg = eval::small_scenario_config(31);
    corpus c{eval::scenario::build(cfg), {}};
    auto pcfg = c.s.cfg.pipeline;
    for (std::size_t e = 0; e < k_epochs; ++e) {
      c.prs.push_back(c.s.run_inference(pcfg));
      pcfg.seed += 1;
    }
    return c;
  }
};

class PortalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { c_ = new corpus{corpus::build()}; }
  static void TearDownTestSuite() {
    delete c_;
    c_ = nullptr;
  }
  static corpus* c_;

  /// A shared_catalog holding the first n epochs ("e0".."e{n-1}").
  static void fill(serve::shared_catalog& cat, std::size_t n) {
    for (std::size_t e = 0; e < n; ++e)
      cat.ingest(c_->s.w, c_->s.view, c_->prs[e], "e" + std::to_string(e));
  }
};

corpus* PortalTest::c_ = nullptr;

/// Blocks worker threads inside before_execute until release(); lets
/// tests freeze the pool and fill the queue deterministically.
struct worker_gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void block() {
    std::unique_lock<std::mutex> l{m};
    ++entered;
    cv.notify_all();
    cv.wait(l, [&] { return open; });
  }
  void wait_entered(int n) {
    std::unique_lock<std::mutex> l{m};
    cv.wait(l, [&] { return entered >= n; });
  }
  void release() {
    const std::lock_guard<std::mutex> l{m};
    open = true;
    cv.notify_all();
  }
};

request make_ping(std::uint32_t id) {
  request r;
  r.op = op_code::ping;
  r.id = id;
  return r;
}

std::size_t open_fds() {
  std::size_t n = 0;
  for (const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)e;
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Protocol round-trips.

request random_request(util::rng& r) {
  request q;
  q.op = static_cast<op_code>(r.uniform_int(0, k_n_op_codes - 1));
  q.id = static_cast<std::uint32_t>(r.uniform_int(0, 1'000'000));
  if (r.bernoulli(0.5)) q.epoch = "epoch-" + std::to_string(r.uniform_int(0, 99));
  if (r.bernoulli(0.3)) q.epoch_to = "to-" + std::to_string(r.uniform_int(0, 99));
  if (r.bernoulli(0.5))
    q.ixp_id = static_cast<std::uint32_t>(r.uniform_int(0, 1000));
  q.asn = static_cast<std::uint32_t>(r.uniform_int(0, 1 << 30));
  q.rtt_lo_ms = r.uniform(0.0, 50.0);
  q.rtt_hi_ms = q.rtt_lo_ms + r.uniform(0.0, 50.0);
  q.dim = static_cast<group_dim>(r.uniform_int(0, k_n_group_dims - 1));
  if (r.bernoulli(0.3))
    q.cls_filter = static_cast<std::uint8_t>(r.uniform_int(0, 2));
  q.limit = static_cast<std::uint32_t>(r.uniform_int(1, 10'000));
  return q;
}

response random_response(util::rng& r) {
  response p;
  p.status = static_cast<portal_errc>(r.uniform_int(0, 10));
  p.id = static_cast<std::uint32_t>(r.uniform_int(0, 1 << 30));
  p.cache_hit = r.bernoulli(0.5);
  p.epoch = "e" + std::to_string(r.uniform_int(0, 9));
  if (r.bernoulli(0.3)) p.message = "detail " + std::to_string(r.uniform_int(0, 99));
  p.total = static_cast<std::uint64_t>(r.uniform_int(0, 1 << 20));
  const auto n_rows = static_cast<std::size_t>(r.uniform_int(0, 20));
  for (std::size_t i = 0; i < n_rows; ++i) {
    row_record row;
    row.ip = static_cast<std::uint32_t>(r.uniform_int(1, 1 << 30));
    row.ixp = static_cast<std::uint32_t>(r.uniform_int(0, 500));
    row.asn = static_cast<std::uint32_t>(r.uniform_int(1, 1 << 30));
    row.cls = static_cast<std::uint8_t>(r.uniform_int(0, 2));
    row.step = static_cast<std::uint8_t>(r.uniform_int(0, 6));
    row.rtt_ms = r.bernoulli(0.8) ? r.uniform(0.0, 300.0)
                                  : std::numeric_limits<double>::quiet_NaN();
    p.rows.push_back(row);
  }
  const auto n_groups = static_cast<std::size_t>(r.uniform_int(0, 10));
  for (std::size_t i = 0; i < n_groups; ++i)
    p.groups.push_back(group_record{
        "g" + std::to_string(i),
        static_cast<std::uint64_t>(r.uniform_int(0, 1 << 20))});
  p.appeared = static_cast<std::uint64_t>(r.uniform_int(0, 1000));
  p.disappeared = static_cast<std::uint64_t>(r.uniform_int(0, 1000));
  p.reclassified = static_cast<std::uint64_t>(r.uniform_int(0, 1000));
  const auto n_labels = static_cast<std::size_t>(r.uniform_int(0, 5));
  for (std::size_t i = 0; i < n_labels; ++i)
    p.labels.push_back("l" + std::to_string(i));
  return p;
}

std::string_view payload_of(const std::string& frame) {
  return std::string_view{frame}.substr(k_frame_prefix_bytes);
}

TEST(PortalProtocol, RequestRoundTripProperty) {
  util::rng root{101};
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto r = root.stream("req", i);
    const request q = random_request(r);
    const auto frame = encode_request(q);
    const request back = decode_request(payload_of(frame));
    EXPECT_EQ(q, back) << "request " << i;
    // NaN-tolerant compare is not needed: requests carry no NaN fields
    // (rtt bounds are drawn finite above; the server rejects NaN).
  }
}

TEST(PortalProtocol, ResponseRoundTripProperty) {
  util::rng root{202};
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto r = root.stream("resp", i);
    const response p = random_response(r);
    const auto frame = encode_response(p);
    const response back = decode_response(payload_of(frame));
    // operator== on double NaN is false; compare NaN positions apart.
    ASSERT_EQ(p.rows.size(), back.rows.size());
    for (std::size_t k = 0; k < p.rows.size(); ++k) {
      if (std::isnan(p.rows[k].rtt_ms)) {
        EXPECT_TRUE(std::isnan(back.rows[k].rtt_ms));
      } else {
        EXPECT_EQ(p.rows[k], back.rows[k]);
      }
    }
    response a = p;
    response b = back;
    a.rows.clear();
    b.rows.clear();
    EXPECT_EQ(a, b) << "response " << i;
  }
}

TEST(PortalProtocol, TruncationAtEveryBoundaryThrowsTyped) {
  util::rng r{303};
  const request q = random_request(r);
  const auto frame = encode_request(q);
  const auto payload = payload_of(frame);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    try {
      (void)decode_request(payload.substr(0, cut));
      FAIL() << "decode of " << cut << "/" << payload.size()
             << " bytes did not throw";
    } catch (const protocol_error& e) {
      EXPECT_TRUE(e.kind() == portal_errc::truncated ||
                  e.kind() == portal_errc::bad_frame)
          << "cut=" << cut << " kind=" << to_string(e.kind());
    }
  }
}

TEST(PortalProtocol, TrailingBytesRejected) {
  const auto frame = encode_request(make_ping(1));
  const std::string extended = std::string{payload_of(frame)} + "x";
  try {
    (void)decode_request(extended);
    FAIL() << "trailing byte accepted";
  } catch (const protocol_error& e) {
    EXPECT_EQ(e.kind(), portal_errc::bad_frame);
  }
}

TEST(PortalProtocol, BadVersionOpAndDimRejected) {
  const auto frame = encode_request(make_ping(1));
  std::string payload{payload_of(frame)};

  auto patched = payload;
  patched[0] = 99;  // version byte
  EXPECT_THROW((void)decode_request(patched), protocol_error);
  try {
    (void)decode_request(patched);
  } catch (const protocol_error& e) {
    EXPECT_EQ(e.kind(), portal_errc::bad_version);
  }

  patched = payload;
  patched[6] = 99;  // op byte: ver u8 | kind u8 | id u32 | op u8
  try {
    (void)decode_request(patched);
    FAIL() << "bad op accepted";
  } catch (const protocol_error& e) {
    EXPECT_EQ(e.kind(), portal_errc::bad_frame);
  }
}

TEST(PortalProtocol, FrameSizeEnforcesCap) {
  std::string prefix;
  wire::put_u32(prefix, k_max_payload_bytes + 1);
  EXPECT_THROW((void)frame_size(prefix), protocol_error);
  std::string ok_prefix;
  wire::put_u32(ok_prefix, 16);
  EXPECT_EQ(frame_size(ok_prefix), 16u + k_frame_prefix_bytes);
  EXPECT_FALSE(frame_size("ab").has_value());  // prefix incomplete
}

TEST(PortalProtocol, CacheKeyIgnoresIdAndIrrelevantFields) {
  request a;
  a.op = op_code::group_by;
  a.dim = group_dim::cls;
  a.id = 1;
  a.asn = 12345;  // irrelevant for group_by
  request b = a;
  b.id = 999;
  b.asn = 54321;
  b.rtt_lo_ms = 7.0;  // irrelevant for group_by
  EXPECT_EQ(cache_key(a), cache_key(b));
  request c = a;
  c.dim = group_dim::metro;
  EXPECT_NE(cache_key(a), cache_key(c));
  request d = a;
  d.op = op_code::member;
  EXPECT_NE(cache_key(a), cache_key(d));
}

// ---------------------------------------------------------------------------
// Server integration: loopback results match direct serve::query.

TEST_F(PortalTest, ServedResultsMatchDirectQuery) {
  serve::shared_catalog cat;
  fill(cat, 2);
  server srv{cat};
  srv.start();
  client c{"127.0.0.1", srv.port()};
  const auto snap = cat.snapshot();

  // epochs
  {
    request q;
    q.op = op_code::epochs;
    q.id = 1;
    const auto r = c.call(q);
    ASSERT_EQ(r.status, portal_errc::ok);
    EXPECT_EQ(r.labels, snap->labels());
  }

  // group_by cls on the latest epoch == direct by_class() group_counts
  {
    request q;
    q.op = op_code::group_by;
    q.dim = group_dim::cls;
    q.id = 2;
    const auto r = c.call(q);
    ASSERT_EQ(r.status, portal_errc::ok);
    EXPECT_EQ(r.epoch, "e1");  // latest resolved
    serve::query direct{*snap};
    direct.epoch("e1").by_class().top(100);
    const auto want = direct.group_counts();
    ASSERT_EQ(r.groups.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(r.groups[i].key, want[i].key);
      EXPECT_EQ(r.groups[i].count, want[i].count);
    }
  }

  // member: pick a real ASN out of the latest epoch
  {
    const auto asns = snap->at(static_cast<serve::epoch_id>(1)).asn_col();
    ASSERT_FALSE(asns.empty());
    request q;
    q.op = op_code::member;
    q.asn = asns[asns.size() / 2];
    q.limit = 10;
    q.id = 3;
    const auto r = c.call(q);
    ASSERT_EQ(r.status, portal_errc::ok);
    serve::query direct{*snap};
    direct.epoch("e1").member(net::asn{q.asn});
    EXPECT_EQ(r.total, direct.count());
    EXPECT_LE(r.rows.size(), 10u);
    for (const auto& row : r.rows) EXPECT_EQ(row.asn, q.asn);
  }

  // rtt_band: totals match, rows sorted by RTT
  {
    request q;
    q.op = op_code::rtt_band;
    q.rtt_lo_ms = 0.0;
    q.rtt_hi_ms = 5.0;
    q.limit = 50;
    q.id = 4;
    const auto r = c.call(q);
    ASSERT_EQ(r.status, portal_errc::ok);
    serve::query direct{*snap};
    direct.epoch("e1").rtt_between(0.0, 5.0);
    EXPECT_EQ(r.total, direct.count());
    for (std::size_t i = 1; i < r.rows.size(); ++i)
      EXPECT_LE(r.rows[i - 1].rtt_ms, r.rows[i].rtt_ms);
  }

  // diff e0 → e1 matches diff_epochs
  {
    request q;
    q.op = op_code::diff;
    q.epoch = "e0";
    q.epoch_to = "e1";
    q.id = 5;
    const auto r = c.call(q);
    ASSERT_EQ(r.status, portal_errc::ok);
    const auto d = serve::diff_epochs(*snap, "e0", "e1");
    EXPECT_EQ(r.appeared, d.appeared.size());
    EXPECT_EQ(r.disappeared, d.disappeared.size());
    EXPECT_EQ(r.reclassified, d.reclassified.size());
  }

  // typed errors: unknown epoch, unknown IXP, NaN band, bad class
  {
    request q;
    q.op = op_code::member;
    q.epoch = "no-such-epoch";
    q.id = 6;
    EXPECT_EQ(c.call(q).status, portal_errc::unknown_epoch);

    request q2;
    q2.op = op_code::member;
    q2.ixp_id = 999999;
    q2.id = 7;
    EXPECT_EQ(c.call(q2).status, portal_errc::unknown_ixp);

    request q3;
    q3.op = op_code::rtt_band;
    q3.rtt_lo_ms = std::numeric_limits<double>::quiet_NaN();
    q3.id = 8;
    EXPECT_EQ(c.call(q3).status, portal_errc::bad_request);

    request q4;
    q4.op = op_code::group_by;
    q4.dim = group_dim::cls;
    q4.cls_filter = 7;
    q4.id = 9;
    EXPECT_EQ(c.call(q4).status, portal_errc::bad_request);
  }

  srv.stop();
}

// scan_threads > 0 gives each worker a private morsel scheduler; the
// served payloads must stay identical to a serial-scan server over the
// same catalog (the engine's byte-identity guarantee, end to end), and
// the parallel_scans / morsels_executed counters must account for the
// scans.  Concurrent clients make this a TSan target for the
// per-worker scheduler indexing.
TEST_F(PortalTest, ParallelScanServerMatchesSerialServerAndCountsMorsels) {
  serve::shared_catalog cat;
  fill(cat, 2);
  server serial_srv{cat};
  server_config pcfg;
  pcfg.workers = 2;
  pcfg.scan_threads = 2;
  pcfg.cache_entries = 0;  // every request hits the scan path
  server par_srv{cat, pcfg};
  serial_srv.start();
  par_srv.start();

  std::vector<request> reqs;
  for (const auto dim :
       {group_dim::ixp, group_dim::metro, group_dim::cls, group_dim::step}) {
    request q;
    q.op = op_code::group_by;
    q.dim = dim;
    reqs.push_back(q);
  }
  for (const double hi : {2.0, 10.0, 60.0}) {
    request q;
    q.op = op_code::rtt_band;
    q.rtt_lo_ms = 0.0;
    q.rtt_hi_ms = hi;
    q.limit = 100;
    reqs.push_back(q);
  }
  for (auto& q : reqs) q.epoch = "e0";

  {
    client serial_c{"127.0.0.1", serial_srv.port()};
    client par_c{"127.0.0.1", par_srv.port()};
    std::uint32_t id = 1;
    for (auto q : reqs) {
      q.id = id++;
      const auto want = serial_c.call(q);
      const auto got = par_c.call(q);
      ASSERT_EQ(got.status, portal_errc::ok) << got.message;
      ASSERT_EQ(want.status, portal_errc::ok);
      EXPECT_EQ(got.total, want.total);
      EXPECT_EQ(got.rows, want.rows);
      EXPECT_EQ(got.groups, want.groups);
    }
  }

  // Concurrent clients hammer the parallel server: worker threads and
  // their private schedulers race under TSan.
  constexpr int k_clients = 3;
  std::vector<std::thread> clients;
  clients.reserve(k_clients);
  for (int t = 0; t < k_clients; ++t) {
    clients.emplace_back([&, t] {
      client c{"127.0.0.1", par_srv.port()};
      for (int i = 0; i < 8; ++i) {
        auto q = reqs[static_cast<std::size_t>(t + i) % reqs.size()];
        q.id = static_cast<std::uint32_t>(1000 + t * 100 + i);
        EXPECT_EQ(c.call(q).status, portal_errc::ok);
      }
    });
  }
  for (auto& th : clients) th.join();

  // Counter surfaces: scans that executed morsels count on the
  // parallel server (an rtt_band whose blocks all zone-skip runs zero
  // morsels, so the exact total depends on pruning — bound it instead:
  // unfiltered group_bys can never skip), none on the serial one.
  const auto fetch = [](server& s) {
    std::map<std::string, std::uint64_t> kv;
    client c{"127.0.0.1", s.port()};
    request q;
    q.op = op_code::stats;
    q.id = 9999;
    const auto r = c.call(q);
    EXPECT_EQ(r.status, portal_errc::ok);
    for (const auto& g : r.groups) kv[g.key] = g.count;
    return kv;
  };
  auto par_kv = fetch(par_srv);
  auto ser_kv = fetch(serial_srv);
  ASSERT_TRUE(par_kv.count("parallel_scans"));
  ASSERT_TRUE(par_kv.count("morsels_executed"));
  const auto total_scans =
      static_cast<std::uint64_t>(reqs.size()) + k_clients * 8;
  EXPECT_GE(par_kv["parallel_scans"], 4u);  // the four unfiltered group_bys
  EXPECT_LE(par_kv["parallel_scans"], total_scans);
  EXPECT_GE(par_kv["morsels_executed"], par_kv["parallel_scans"]);
  EXPECT_EQ(ser_kv["parallel_scans"], 0u);
  EXPECT_EQ(ser_kv["morsels_executed"], 0u);

  par_srv.stop();
  serial_srv.stop();
}

TEST_F(PortalTest, MalformedFramesGetTypedResponsesAndConnectionSurvives) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server srv{cat};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  // A structurally valid frame whose op byte is garbage: the server
  // answers with the decode error's typed status (id echoed best-effort
  // from the id field) and keeps the connection.
  auto frame = encode_request(make_ping(77));
  frame[k_frame_prefix_bytes + 6] = 99;  // op byte
  ASSERT_TRUE(net::send_all(c.fd(), frame));
  const auto bad = c.receive(5000);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, portal_errc::bad_frame);
  EXPECT_EQ(bad->id, 77u);

  // The same connection still serves valid requests.
  const auto pong = c.call(make_ping(78));
  EXPECT_EQ(pong.status, portal_errc::ok);
  EXPECT_EQ(pong.id, 78u);

  // An oversized length prefix is unrecoverable: typed response, then
  // the server drops the connection.
  std::string huge;
  wire::put_u32(huge, k_max_payload_bytes + 1);
  ASSERT_TRUE(net::send_all(c.fd(), huge));
  const auto over = c.receive(5000);
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(over->status, portal_errc::oversized);
  EXPECT_THROW((void)c.receive(5000), net::socket_error);

  EXPECT_EQ(srv.stats().protocol_errors, 2u);
  srv.stop();
}

TEST_F(PortalTest, HttpDebugSurface) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server srv{cat};
  srv.start();

  const auto http_get = [&](const std::string& path) {
    net::unique_fd fd{net::connect_tcp("127.0.0.1", srv.port())};
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_TRUE(net::send_all(fd.get(), req));
    std::string out;
    std::array<char, 4096> buf;
    while (true) {
      const auto n = net::recv_some(fd.get(), buf);
      if (n > 0) {
        out.append(buf.data(), static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) break;  // EOF: server closes after one exchange
      pollfd p{fd.get(), POLLIN, 0};
      ::poll(&p, 1, 5000);
    }
    return out;
  };

  const auto health = http_get("/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
  const auto epochs = http_get("/epochs");
  EXPECT_NE(epochs.find("e0"), std::string::npos);
  const auto missing = http_get("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_EQ(srv.stats().http_requests, 3u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Result cache.

TEST_F(PortalTest, CacheHitsAndInvalidatesOnPublish) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server srv{cat};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  request q;
  q.op = op_code::group_by;
  q.dim = group_dim::cls;
  q.id = 1;

  const auto r1 = c.call(q);
  ASSERT_EQ(r1.status, portal_errc::ok);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.epoch, "e0");

  q.id = 2;
  const auto r2 = c.call(q);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.id, 2u);  // id is per-request even on a hit
  EXPECT_EQ(r2.groups.size(), r1.groups.size());

  // The concrete label and the latest-selector share one entry.
  request q_explicit = q;
  q_explicit.epoch = "e0";
  q_explicit.id = 3;
  EXPECT_TRUE(c.call(q_explicit).cache_hit);

  // Publish epoch e1: the cache clears and "latest" re-resolves.
  cat.ingest(c_->s.w, c_->s.view, c_->prs[1], "e1");
  q.id = 4;
  const auto r3 = c.call(q);
  ASSERT_EQ(r3.status, portal_errc::ok);
  EXPECT_FALSE(r3.cache_hit);
  EXPECT_EQ(r3.epoch, "e1");

  const auto s = srv.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.catalog_version, 2u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Admission control (deterministic via the before_execute gate).

TEST_F(PortalTest, FullQueueShedsWithOverloadedNeverHangs) {
  serve::shared_catalog cat;
  fill(cat, 1);
  worker_gate gate;
  server_config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.cache_entries = 0;
  cfg.before_execute = [&gate] { gate.block(); };
  server srv{cat, cfg};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  c.send(make_ping(1));     // admitted, popped, worker blocks in the gate
  gate.wait_entered(1);
  c.send(make_ping(2));     // admitted, sits in the (cap-1) queue
  // Give the acceptor time to admit #2 before the sheddable ones — the
  // shed responses below prove #3/#4 arrived after it.
  for (int i = 0; i < 200 && srv.stats().requests_admitted < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  ASSERT_EQ(srv.stats().requests_admitted, 2u);
  c.send(make_ping(3));     // queue full → immediate overloaded
  c.send(make_ping(4));     // queue full → immediate overloaded

  for (std::uint32_t want : {3u, 4u}) {
    const auto r = c.receive(5000);
    ASSERT_TRUE(r.has_value()) << "shed response " << want << " never came";
    EXPECT_EQ(r->status, portal_errc::overloaded);
    EXPECT_EQ(r->id, want);
  }

  gate.release();
  for (std::uint32_t want : {1u, 2u}) {
    const auto r = c.receive(5000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, portal_errc::ok);
    EXPECT_EQ(r->id, want);
  }
  EXPECT_EQ(srv.stats().shed_queue_full, 2u);
  srv.stop();
}

TEST_F(PortalTest, PipelineCapShedsPerConnection) {
  serve::shared_catalog cat;
  fill(cat, 1);
  worker_gate gate;
  server_config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_pipeline = 2;
  cfg.cache_entries = 0;
  cfg.before_execute = [&gate] { gate.block(); };
  server srv{cat, cfg};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  c.send(make_ping(1));  // in flight 1 (worker blocks)
  gate.wait_entered(1);
  c.send(make_ping(2));  // in flight 2 = cap
  for (int i = 0; i < 200 && srv.stats().requests_admitted < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  c.send(make_ping(3));  // over the cap → shed
  c.send(make_ping(4));  // over the cap → shed

  for (std::uint32_t want : {3u, 4u}) {
    const auto r = c.receive(5000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, portal_errc::overloaded);
    EXPECT_EQ(r->id, want);
  }
  // A second connection is not throttled by the first one's pipeline.
  client c2{"127.0.0.1", srv.port()};
  c2.send(make_ping(10));
  gate.release();
  EXPECT_EQ(c2.receive(5000)->status, portal_errc::ok);
  for (std::uint32_t want : {1u, 2u})
    EXPECT_EQ(c.receive(5000)->id, want);
  EXPECT_EQ(srv.stats().shed_pipeline, 2u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Graceful shutdown.

TEST_F(PortalTest, StopDrainsAdmittedRequests) {
  serve::shared_catalog cat;
  fill(cat, 1);
  worker_gate gate;
  server_config cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;
  cfg.before_execute = [&gate] { gate.block(); };
  server srv{cat, cfg};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  for (std::uint32_t id : {1u, 2u, 3u}) c.send(make_ping(id));
  gate.wait_entered(1);
  for (int i = 0; i < 200 && srv.stats().requests_admitted < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  ASSERT_EQ(srv.stats().requests_admitted, 3u);

  std::thread stopper{[&] { srv.stop(); }};
  // stop() must not complete while a worker still holds a request.
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  gate.release();
  stopper.join();

  // Every admitted request got its response before the socket closed.
  for (std::uint32_t want : {1u, 2u, 3u}) {
    const auto r = c.receive(5000);
    ASSERT_TRUE(r.has_value()) << "request " << want << " was not drained";
    EXPECT_EQ(r->status, portal_errc::ok);
    EXPECT_EQ(r->id, want);
  }
  EXPECT_THROW((void)c.receive(5000), net::socket_error);  // then EOF
  EXPECT_EQ(srv.stats().responses_ok, 3u);
}

TEST_F(PortalTest, StartStopLoopLeaksNoFds) {
  serve::shared_catalog cat;
  fill(cat, 1);
  // One throwaway cycle first so lazily-created descriptors (epoll
  // instances, DNS, etc.) exist before the baseline count.
  {
    server srv{cat};
    srv.start();
    client c{"127.0.0.1", srv.port()};
    EXPECT_EQ(c.call(make_ping(1)).status, portal_errc::ok);
    srv.stop();
  }
  const auto baseline = open_fds();
  for (int cycle = 0; cycle < 3; ++cycle) {
    server srv{cat};
    srv.start();
    client c{"127.0.0.1", srv.port()};
    EXPECT_EQ(c.call(make_ping(1)).status, portal_errc::ok);
    srv.stop();
  }
  EXPECT_EQ(open_fds(), baseline);
}

// ---------------------------------------------------------------------------
// Concurrency: clients race an epoch-publishing writer (TSan target).

TEST_F(PortalTest, ConcurrentClientsRacePublish) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server_config cfg;
  cfg.workers = 2;
  server srv{cat, cfg};
  srv.start();

  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  constexpr int k_clients = 3;

  std::vector<std::thread> clients;
  clients.reserve(k_clients);
  for (int t = 0; t < k_clients; ++t) {
    clients.emplace_back([&, t] {
      client c{"127.0.0.1", srv.port()};
      std::uint32_t id = static_cast<std::uint32_t>(t) * 1'000'000;
      while (!done.load(std::memory_order_relaxed)) {
        request q;
        q.op = (id % 2 == 0) ? op_code::group_by : op_code::epochs;
        q.dim = group_dim::cls;
        q.id = id++;
        const auto r = c.call(q);
        // Every response reflects one fully-published snapshot: the
        // resolved epoch is a label that exists, and group keys are
        // valid class names.
        if (r.status != portal_errc::ok) bad.fetch_add(1);
        if (q.op == op_code::group_by) {
          if (r.epoch.empty() || r.epoch[0] != 'e') bad.fetch_add(1);
          if (r.groups.empty() || r.groups.size() > 3) bad.fetch_add(1);
        } else if (r.labels.empty() || r.labels.front() != "e0") {
          bad.fetch_add(1);
        }
      }
    });
  }

  for (std::size_t e = 1; e < corpus::k_epochs; ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    cat.ingest(c_->s.w, c_->s.view, c_->prs[e], "e" + std::to_string(e));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{30});
  done.store(true);
  for (auto& th : clients) th.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(srv.stats().catalog_version, corpus::k_epochs);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Workload determinism.

TEST_F(PortalTest, WorkloadIsDeterministicPerSeed) {
  serve::shared_catalog cat;
  fill(cat, 2);
  const auto snap = cat.snapshot();

  workload_config wcfg;
  wcfg.seed = 9;
  const workload a{*snap, wcfg};
  const workload b{*snap, wcfg};
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(encode_request(a.nth(i)), encode_request(b.nth(i))) << i;
    EXPECT_EQ(a.gap_s(i), b.gap_s(i)) << i;
    EXPECT_GE(a.gap_s(i), 0.0);
  }
  // Out-of-order and repeated draws do not disturb the stream.
  const auto early = encode_request(a.nth(3));
  (void)a.nth(199);
  (void)a.nth(42);
  EXPECT_EQ(encode_request(a.nth(3)), early);

  wcfg.seed = 10;
  const workload d{*snap, wcfg};
  bool differs = false;
  for (std::uint64_t i = 0; i < 200 && !differs; ++i)
    differs = encode_request(a.nth(i)) != encode_request(d.nth(i));
  EXPECT_TRUE(differs) << "different seeds produced identical streams";

  // Every generated request decodes and is servable.
  serve::shared_catalog cat2;
  fill(cat2, 2);
  server srv{cat2};
  srv.start();
  client c{"127.0.0.1", srv.port()};
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto r = c.call(a.nth(i));
    EXPECT_EQ(r.status, portal_errc::ok) << "request " << i << ": " << r.message;
  }
  srv.stop();
}

// ---------------------------------------------------------------------------
// Write-side robustness: bounded writes, stalled peers, receive deadline.

TEST_F(PortalTest, GroupByTotalIsFullCountWhenLimitTruncates) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server srv{cat};
  srv.start();
  client c{"127.0.0.1", srv.port()};

  serve::query direct{*cat.snapshot()};
  direct.epoch("e0").by_asn();
  const auto all = direct.group_counts();
  ASSERT_GT(all.size(), 1u);

  request q;
  q.op = op_code::group_by;
  q.dim = group_dim::asn;
  q.limit = 1;
  q.id = 1;
  const auto r = c.call(q);
  ASSERT_EQ(r.status, portal_errc::ok);
  ASSERT_EQ(r.groups.size(), 1u);
  // total reports the FULL group count, like member/rtt_band do for
  // rows; the group list itself is the limit-capped window.
  EXPECT_EQ(r.total, all.size());
  EXPECT_EQ(r.groups[0].key, all[0].key);
  EXPECT_EQ(r.groups[0].count, all[0].count);
  srv.stop();
}

TEST(NetSendAll, HonorsDeadlineAndNeverThrowsOnDeadPeer) {
  auto listen = net::listen_tcp("127.0.0.1", 0);
  auto sender = net::connect_tcp("127.0.0.1", net::local_port(listen.get()));
  net::unique_fd receiver{
      ::accept4(listen.get(), nullptr, nullptr, SOCK_CLOEXEC)};
  ASSERT_TRUE(receiver.valid());
  net::set_nonblocking(sender.get(), true);
  const int small = 4096;
  ::setsockopt(sender.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  // The receiver never reads: an 8 MiB write must stall, and the
  // deadline must turn the stall into `false`, not an indefinite poll.
  const std::string big(8 * 1024 * 1024, 'x');
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(net::send_all(sender.get(), big, 200));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds{5});

  // A vanished peer (RST on close with unread data) is `false` too —
  // never an exception, whatever errno the kernel picks.
  receiver.reset();
  EXPECT_FALSE(net::send_all(sender.get(), big, 200));
}

TEST_F(PortalTest, StalledReaderIsDroppedAndServerStaysResponsive) {
  serve::shared_catalog cat;
  fill(cat, 1);
  server_config cfg;
  cfg.workers = 1;
  cfg.max_pipeline = 4;
  cfg.cache_entries = 0;
  cfg.write_timeout_ms = 50;
  server srv{cat, cfg};
  srv.start();

  // A misbehaving peer: pipelines thousands of pings and never reads a
  // byte.  Its responses (mostly acceptor-written pipeline sheds) fill
  // the socket until the server's bounded write stalls; the server must
  // drop it instead of wedging the acceptor in that write.
  auto bad = net::connect_tcp("127.0.0.1", srv.port());
  net::set_nonblocking(bad.get(), true);
  const auto frame = encode_request(make_ping(1));
  // Wall-clock bound, not just an iteration cap: under sanitizers a
  // slow server can keep each send just under its budget for a long
  // time without ever stalling one outright.
  const auto flood_until =
      std::chrono::steady_clock::now() + std::chrono::seconds{2};
  for (int i = 0;
       i < 200'000 && std::chrono::steady_clock::now() < flood_until; ++i)
    if (!net::send_all(bad.get(), frame, 50)) break;  // server dropped us

  // The acceptor is alive: a well-behaved client still gets served.
  // (Before bounded writes this hung forever, so the generous timeout
  // costs nothing in the passing case.)
  client good{"127.0.0.1", srv.port()};
  good.send(make_ping(7));
  const auto r = good.receive(30'000);
  ASSERT_TRUE(r.has_value()) << "server wedged behind the stalled reader";
  EXPECT_EQ(r->status, portal_errc::ok);
  EXPECT_EQ(r->id, 7u);
  srv.stop();
}

TEST(PortalClient, ReceiveTimeoutIsOneDeadlineUnderTrickledBytes) {
  auto listen = net::listen_tcp("127.0.0.1", 0);
  client c{"127.0.0.1", net::local_port(listen.get())};
  net::unique_fd peer{::accept4(listen.get(), nullptr, nullptr, SOCK_CLOEXEC)};
  ASSERT_TRUE(peer.valid());

  std::atomic<bool> stop{false};
  std::thread trickler{[&] {
    std::string prefix;
    wire::put_u32(prefix, 64);  // a frame that never completes in time
    (void)net::send_all(peer.get(), prefix);
    for (int i = 0; i < 40 && !stop.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds{50});
      (void)net::send_all(peer.get(), "x");
    }
  }};

  // Bytes landing every 50 ms must not keep resetting a 300 ms timeout:
  // the call times out once, roughly on schedule.
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = c.receive(300);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  stop.store(true);
  trickler.join();
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(elapsed, std::chrono::milliseconds{290});
  EXPECT_LT(elapsed, std::chrono::milliseconds{1500});
}

// ---------------------------------------------------------------------------
// Supporting utilities picked up by this PR.

TEST(BoundedQueue, PushPopShedAndCloseSemantics) {
  util::bounded_queue<int> q{2};
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: the shed primitive
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed
  EXPECT_EQ(q.pop(), 2);        // drains what was admitted
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);  // closed + drained
}

TEST(LatencyRecorder, QuantilesAreOrderedAndMaxExact) {
  util::latency_recorder rec;
  for (std::uint64_t v = 1; v <= 10'000; ++v) rec.record_ns(v * 1000);
  EXPECT_EQ(rec.count(), 10'000u);
  EXPECT_EQ(rec.max_ns(), 10'000'000u);
  EXPECT_LE(rec.p50_ns(), rec.p99_ns());
  EXPECT_LE(rec.p99_ns(), rec.p999_ns());
  EXPECT_LE(rec.p999_ns(), rec.max_ns());
  // Log-bucketed: each quantile within one octave's sub-bucket width.
  EXPECT_NEAR(static_cast<double>(rec.p50_ns()), 5e6, 5e6 / 32.0 * 2);
  EXPECT_NEAR(static_cast<double>(rec.p99_ns()), 9.9e6, 9.9e6 / 32.0 * 2);

  util::latency_recorder other;
  other.record_ns(20'000'000);
  rec.merge(other);
  EXPECT_EQ(rec.count(), 10'001u);
  EXPECT_EQ(rec.max_ns(), 20'000'000u);
  EXPECT_EQ(rec.quantile_ns(1.0), 20'000'000u);
}

}  // namespace
