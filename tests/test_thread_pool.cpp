// The util::thread_pool behind the parallel executor: every index runs
// exactly once, work really crosses threads, results published by the
// completion latch are visible to the caller, exceptions propagate, and
// the pool survives many reuse cycles (the shape TSan scrutinizes).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "opwat/util/thread_pool.hpp"

namespace {

using opwat::util::thread_pool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  thread_pool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ResultsVisibleAfterReturn) {
  // The completion latch must publish shard writes to the caller: fill a
  // vector from workers and read it immediately (TSan verifies the
  // happens-before edge, the sum verifies the data).
  thread_pool pool{3};
  std::vector<std::size_t> out(512);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  std::size_t sum = 0;
  for (std::size_t i = 0; i < out.size(); ++i) sum += out[i] - i * i;
  EXPECT_EQ(sum, 0u);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  thread_pool pool{2};
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 200u * 16u);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  thread_pool pool{2};
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, DefaultSizeIsHardwareConcurrency) {
  thread_pool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WorkActuallyCrossesThreads) {
  thread_pool pool{4};
  std::mutex m;
  std::set<std::thread::id> ids;
  pool.parallel_for(256, [&](std::size_t) {
    const std::lock_guard lock{m};
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));  // caller only waits
}

TEST(ThreadPool, FirstExceptionPropagatesLoopDrains) {
  thread_pool pool{4};
  std::atomic<std::size_t> ran{0};
  const auto work = [&](std::size_t i) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (i == 7) throw std::runtime_error("shard 7 failed");
  };
  EXPECT_THROW(pool.parallel_for(64, work), std::runtime_error);
  EXPECT_EQ(ran.load(), 64u);  // the loop drains; nothing is abandoned
  // The pool stays usable after a throwing job.
  std::atomic<std::size_t> again{0};
  pool.parallel_for(8, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 8u);
}

}  // namespace
