// Reference-model property tests: the LPM table against a brute-force
// linear scan, and the merge layer against an order-independent oracle.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "opwat/net/ipv4.hpp"
#include "opwat/util/rng.hpp"

namespace {

using namespace opwat::net;
using opwat::util::rng;

/// Brute-force longest-prefix match used as the oracle.
class linear_lpm {
 public:
  void insert(const prefix& p, int v) {
    for (auto& [q, val] : entries_)
      if (q == p) {
        val = v;
        return;
      }
    entries_.push_back({p, v});
  }
  [[nodiscard]] std::optional<int> lookup(ipv4_addr a) const {
    std::optional<int> best;
    int best_len = -1;
    for (const auto& [p, v] : entries_) {
      if (p.contains(a) && p.length() > best_len) {
        best_len = p.length();
        best = v;
      }
    }
    return best;
  }

 private:
  std::vector<std::pair<prefix, int>> entries_;
};

class LpmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmFuzz, MatchesLinearReference) {
  rng r{GetParam()};
  lpm_table<int> fast;
  linear_lpm slow;
  // Random prefix set, biased toward nested structures.
  for (int i = 0; i < 300; ++i) {
    const auto base = static_cast<std::uint32_t>(r.next());
    const auto len = static_cast<int>(r.uniform_int(4, 30));
    const prefix p{ipv4_addr{base}, len};
    fast.insert(p, i);
    slow.insert(p, i);
    // Insert a sub-prefix of an existing one half the time.
    if (r.bernoulli(0.5)) {
      const auto sublen = std::min(32, len + static_cast<int>(r.uniform_int(1, 6)));
      const prefix sub{ipv4_addr{base | static_cast<std::uint32_t>(r.next() & 0xffff)},
                       sublen};
      fast.insert(sub, 1000 + i);
      slow.insert(sub, 1000 + i);
    }
  }
  // Probe random addresses plus boundary addresses of inserted prefixes.
  for (int i = 0; i < 3000; ++i) {
    const ipv4_addr probe{static_cast<std::uint32_t>(r.next())};
    EXPECT_EQ(fast.lookup(probe), slow.lookup(probe)) << probe.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmFuzz, ::testing::Values(1, 2, 3, 4, 5, 99));

class PrefixContainsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixContainsFuzz, ContainsIsConsistentWithMasks) {
  rng r{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto base = static_cast<std::uint32_t>(r.next());
    const auto len = static_cast<int>(r.uniform_int(0, 32));
    const prefix p{ipv4_addr{base}, len};
    const ipv4_addr probe{static_cast<std::uint32_t>(r.next())};
    const bool expected =
        len == 0 || ((probe.value() ^ p.network().value()) >> (32 - len)) == 0;
    EXPECT_EQ(p.contains(probe), expected);
    // A prefix always contains its own network and last address.
    EXPECT_TRUE(p.contains(p.network()));
    EXPECT_TRUE(p.contains(p.at(p.size() - 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixContainsFuzz, ::testing::Values(7, 8, 9));

}  // namespace
