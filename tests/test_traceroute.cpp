#include <gtest/gtest.h>

#include "opwat/measure/traceroute.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::measure;

class TracerouteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new world::world{world::generate(world::tiny_config(51))};
    lat_ = new latency_model{66};
    traceroute_config cfg;
    cfg.star_rate = 0.0;  // deterministic structure for assertions
    cfg.third_party_rate = 0.0;
    engine_ = new traceroute_engine{*w_, *lat_, cfg};
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete lat_;
    delete w_;
  }
  static world::world* w_;
  static latency_model* lat_;
  static traceroute_engine* engine_;
};

world::world* TracerouteTest::w_ = nullptr;
latency_model* TracerouteTest::lat_ = nullptr;
traceroute_engine* TracerouteTest::engine_ = nullptr;

TEST_F(TracerouteTest, ConnectedAsesNonEmpty) {
  EXPECT_GT(engine_->connected_ases().size(), 50u);
}

TEST_F(TracerouteTest, ReachesRoutedPrefix) {
  const auto& sources = engine_->connected_ases();
  util::rng r{1};
  std::size_t reached = 0, attempted = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(sources.size(), 40); ++i) {
    const auto dst_as = sources[(i * 7 + 3) % sources.size()];
    if (w_->ases[dst_as].routed_prefixes.empty()) continue;
    ++attempted;
    const auto t = engine_->run(sources[i], w_->ases[dst_as].routed_prefixes[0].at(1), r);
    if (t && t->reached) {
      ++reached;
      EXPECT_EQ(t->hops.back().ip, w_->ases[dst_as].routed_prefixes[0].at(1));
    }
  }
  EXPECT_GT(reached, attempted / 2);
}

TEST_F(TracerouteTest, HopRttsMonotonicallyIncrease) {
  const auto& sources = engine_->connected_ases();
  util::rng r{2};
  const auto dst = sources.back();
  ASSERT_FALSE(w_->ases[dst].routed_prefixes.empty());
  const auto t = engine_->run(sources.front(), w_->ases[dst].routed_prefixes[0].at(1), r);
  ASSERT_TRUE(t);
  // Per-hop jitter is small compared to leg latency; cumulative RTT is
  // non-decreasing up to jitter tolerance.
  for (std::size_t i = 1; i < t->hops.size(); ++i)
    EXPECT_GE(t->hops[i].rtt_ms, t->hops[i - 1].rtt_ms - 2.5);
}

TEST_F(TracerouteTest, CrossingEmitsFarSideLanInterface) {
  // For a path src -> dst over one IXP, the LAN hop must carry the
  // DESTINATION member's peering address, per §3.3 triplet semantics.
  util::rng r{3};
  for (const auto& m_src : w_->memberships) {
    for (const auto& m_dst : w_->memberships) {
      if (m_src.ixp != m_dst.ixp || m_src.member == m_dst.member) continue;
      if (w_->ases[m_dst.member].routed_prefixes.empty()) continue;
      const auto t = engine_->run(m_src.member,
                                  w_->ases[m_dst.member].routed_prefixes[0].at(1), r);
      ASSERT_TRUE(t);
      ASSERT_TRUE(t->reached);
      bool saw_lan_hop = false;
      for (const auto& h : t->hops)
        if (h.ip == m_dst.interface_ip) saw_lan_hop = true;
      // The BFS may route around via a private link; but when only one
      // shared IXP exists and no private path, the LAN hop must appear.
      if (t->hops.size() <= 4) EXPECT_TRUE(saw_lan_hop);
      return;  // one pair suffices
    }
  }
}

TEST_F(TracerouteTest, IntraAsTraceIsShort) {
  util::rng r{4};
  const auto src = engine_->connected_ases().front();
  ASSERT_FALSE(w_->ases[src].routed_prefixes.empty());
  const auto t = engine_->run(src, w_->ases[src].routed_prefixes[0].at(1), r);
  ASSERT_TRUE(t);
  EXPECT_TRUE(t->reached);
  EXPECT_LE(t->hops.size(), 2u);
}

TEST_F(TracerouteTest, UnroutableDestinationFails) {
  util::rng r{5};
  EXPECT_FALSE(engine_->run(0, net::ipv4_addr{198, 18, 0, 1}, r).has_value());
}

TEST_F(TracerouteTest, CampaignDeterministic) {
  util::rng r1{7}, r2{7};
  const std::vector<world::as_id> srcs{engine_->connected_ases().begin(),
                                       engine_->connected_ases().begin() + 10};
  const auto c1 = engine_->campaign(srcs, 5, r1);
  const auto c2 = engine_->campaign(srcs, 5, r2);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1[i].hops.size(), c2[i].hops.size());
    EXPECT_EQ(c1[i].dst, c2[i].dst);
  }
}

TEST_F(TracerouteTest, StarsAppearAtConfiguredRate) {
  traceroute_config cfg;
  cfg.star_rate = 0.5;
  const traceroute_engine noisy{*w_, *lat_, cfg};
  util::rng r{8};
  const std::vector<world::as_id> srcs{engine_->connected_ases().begin(),
                                       engine_->connected_ases().begin() + 20};
  const auto traces = noisy.campaign(srcs, 10, r);
  std::size_t stars = 0, hops = 0;
  for (const auto& t : traces)
    for (const auto& h : t.hops) {
      ++hops;
      if (h.star) ++stars;
    }
  ASSERT_GT(hops, 0u);
  const double rate = static_cast<double>(stars) / static_cast<double>(hops);
  EXPECT_GT(rate, 0.3);
  EXPECT_LT(rate, 0.7);
}

TEST_F(TracerouteTest, VpTraceMatchesPingScale) {
  util::rng r{9};
  const auto& m = w_->memberships.front();
  const auto vp_fac = w_->ixps[m.ixp].facilities.front();
  const net_point vp{w_->facilities[vp_fac].location, vp_fac};
  const auto t = engine_->run_from_vp(vp, m.interface_ip, r);
  ASSERT_TRUE(t.reached);
  ASSERT_EQ(t.hops.size(), 1u);
  const auto router_pt = latency_model::point_of_router(*w_, m.router);
  const double base = lat_->base_rtt_ms(vp, router_pt);
  EXPECT_GE(t.hops[0].rtt_ms, base);
  EXPECT_LT(t.hops[0].rtt_ms, base + 80.0);
}

}  // namespace
