// The §6.4 routing-implications study.
#include <gtest/gtest.h>

#include "opwat/eval/routing.hpp"
#include "opwat/geo/metro.hpp"
#include "opwat/eval/scenario.hpp"

namespace {

using namespace opwat;
using eval::routing_verdict;

class RoutingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(29))};
    pr_ = new infer::pipeline_result{s_->run_inference()};
    studied_ = pr_->scope.front();
    std::vector<net::asn> remote_members;
    for (const auto& [key, inf] : pr_->inferences.items())
      if (key.ixp == studied_ && inf.cls == infer::peering_class::remote)
        if (const auto asn = s_->view.member_of_interface(key.ip))
          remote_members.push_back(*asn);
    engine_ = new measure::traceroute_engine{s_->make_traceroute_engine()};
    study_ = new eval::routing_study{eval::run_routing_study(
        s_->w, s_->view, s_->prefix2as, *engine_, studied_, remote_members, {})};
  }
  static void TearDownTestSuite() {
    delete study_;
    delete engine_;
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
  static measure::traceroute_engine* engine_;
  static eval::routing_study* study_;
  static world::ixp_id studied_;
};

eval::scenario* RoutingTest::s_ = nullptr;
infer::pipeline_result* RoutingTest::pr_ = nullptr;
measure::traceroute_engine* RoutingTest::engine_ = nullptr;
eval::routing_study* RoutingTest::study_ = nullptr;
world::ixp_id RoutingTest::studied_ = world::k_invalid;

TEST_F(RoutingTest, StudyProducesCases) {
  EXPECT_GT(study_->pairs_examined, 0u);
  EXPECT_GT(study_->crossings_found, 0u);
  EXPECT_FALSE(study_->cases.empty());
}

TEST_F(RoutingTest, VerdictCountsSumToCases) {
  const auto total = study_->count(routing_verdict::hot_potato) +
                     study_->count(routing_verdict::rp_detour) +
                     study_->count(routing_verdict::missed_rp) +
                     study_->count(routing_verdict::other);
  EXPECT_EQ(total, study_->cases.size());
}

TEST_F(RoutingTest, CasesAreWellFormed) {
  for (const auto& c : study_->cases) {
    EXPECT_NE(c.as_r, c.as_x);
    EXPECT_NE(c.used_ixp, world::k_invalid);
    EXPECT_NE(c.closest_common_ixp, world::k_invalid);
    EXPECT_GE(c.used_distance_km, 0.0);
    EXPECT_GE(c.closest_distance_km, 0.0);
    // The closest common IXP can never be farther than the used one plus
    // the classification tolerance.
    EXPECT_LE(c.closest_distance_km, c.used_distance_km + 1e-6);
  }
}

TEST_F(RoutingTest, VerdictsConsistentWithDistances) {
  for (const auto& c : study_->cases) {
    switch (c.verdict) {
      case routing_verdict::hot_potato:
        EXPECT_LE(c.used_distance_km,
                  c.closest_distance_km + geo::kMetroSeparationKm + 1e-6);
        break;
      case routing_verdict::rp_detour:
        EXPECT_EQ(c.used_ixp, studied_);
        EXPECT_GT(c.used_distance_km, c.closest_distance_km);
        break;
      case routing_verdict::missed_rp:
        EXPECT_NE(c.used_ixp, studied_);
        EXPECT_EQ(c.closest_common_ixp, studied_);
        break;
      case routing_verdict::other:
        break;
    }
  }
}

TEST_F(RoutingTest, HotPotatoIsTheCommonCase) {
  // The paper finds 66% hot-potato compliance; in any sane topology the
  // compliant case should be the plurality.
  const auto hp = study_->count(routing_verdict::hot_potato);
  EXPECT_GE(hp, study_->count(routing_verdict::rp_detour));
  EXPECT_GE(hp, study_->count(routing_verdict::missed_rp));
}

TEST_F(RoutingTest, MaxPairsRespected) {
  eval::routing_config cfg;
  cfg.max_pairs = 10;
  std::vector<net::asn> remote_members;
  for (const auto& [key, inf] : pr_->inferences.items())
    if (key.ixp == studied_ && inf.cls == infer::peering_class::remote)
      if (const auto asn = s_->view.member_of_interface(key.ip))
        remote_members.push_back(*asn);
  const auto small = eval::run_routing_study(s_->w, s_->view, s_->prefix2as, *engine_,
                                             studied_, remote_members, cfg);
  EXPECT_LE(small.pairs_examined, 10u);
}

TEST_F(RoutingTest, EmptyRemoteSetYieldsEmptyStudy) {
  const auto empty = eval::run_routing_study(s_->w, s_->view, s_->prefix2as, *engine_,
                                             studied_, {}, {});
  EXPECT_EQ(empty.pairs_examined, 0u);
  EXPECT_TRUE(empty.cases.empty());
}

TEST_F(RoutingTest, VerdictNamesRender) {
  EXPECT_EQ(to_string(routing_verdict::hot_potato), "hot-potato");
  EXPECT_EQ(to_string(routing_verdict::rp_detour), "rp-detour");
  EXPECT_EQ(to_string(routing_verdict::missed_rp), "missed-rp");
  EXPECT_EQ(to_string(routing_verdict::other), "other");
}

}  // namespace
