// The column codecs (opwat/serve/compress.hpp) and the .opwatc v2
// columns section built on them (opwat/serve/store.hpp).  Pins
//   - encode ∘ decode round-trips per codec across randomized value
//     distributions: constant columns, dense sequential values, and
//     adversarial outliers (one huge value forcing a wide bit width);
//   - the on-encoded predicate kernels (for_value_at,
//     for_count_in_range, rle_count_eq) against naive recomputation
//     over the decoded values;
//   - canonical-form rejection: non-minimal bit widths, unachieved
//     header min/max, nonzero trailing bits, zero-length and
//     mergeable runs, and run-length sums that disagree with the
//     count all raise store_error(store_errc::corrupt);
//   - compressed-vs-uncompressed query parity: a v2 save/load round
//     trip answers every query shape identically to the in-memory
//     catalog and to a v1 save/load of the same catalog;
//   - version compatibility: a v1 file loads, re-saves byte-stably in
//     v1, and appends in its own version; v2 save → load → save is
//     byte-identical; store_inspect reports versions and codecs;
//   - corruption injection for compressed sections: bit flips inside
//     codec payloads (with the section CRC re-patched so the flip
//     reaches the codec validator), truncation at compressed-chunk
//     boundaries, and invalid codec / bit-width bytes all raise the
//     typed store_error — never UB (ASan/UBSan watch this suite).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/compress.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/store.hpp"
#include "opwat/util/checksum.hpp"

namespace {

using namespace opwat;
using namespace opwat::serve::compress;

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string read_bytes(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
}

void write_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

// --- value distributions -----------------------------------------------------

std::vector<std::uint32_t> u32_values(std::mt19937_64& rng, int kind,
                                      std::size_t n) {
  std::vector<std::uint32_t> v(n);
  switch (kind) {
    case 0:  // constant
      std::fill(v.begin(), v.end(),
                static_cast<std::uint32_t>(rng() & 0xFFFFFFFFu));
      break;
    case 1:  // dense sequential around a base
      for (std::size_t i = 0; i < n; ++i)
        v[i] = 1000000u + static_cast<std::uint32_t>(i) + (rng() % 3);
      break;
    case 2:  // adversarial: small values plus one huge outlier
      for (std::size_t i = 0; i < n; ++i) v[i] = rng() % 16;
      if (n > 0) v[rng() % n] = std::numeric_limits<std::uint32_t>::max();
      break;
    default:  // uniform random
      for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint32_t>(rng() & 0xFFFFFFFFu);
      break;
  }
  return v;
}

std::vector<std::uint8_t> u8_values(std::mt19937_64& rng, int kind,
                                    std::size_t n) {
  std::vector<std::uint8_t> v(n);
  switch (kind) {
    case 0:  // constant
      std::fill(v.begin(), v.end(), static_cast<std::uint8_t>(rng() % 7));
      break;
    case 1:  // long runs
      for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>((i / 37) % 3);
      break;
    default:  // adversarial: alternating, no run longer than 1
      for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i % 2 == 0 ? rng() % 3 : 3 + rng() % 3);
      break;
  }
  return v;
}

std::vector<std::uint64_t> u64_values(std::mt19937_64& rng, int kind,
                                      std::size_t n) {
  std::vector<std::uint64_t> v(n);
  const auto nan_bits = std::bit_cast<std::uint64_t>(
      std::numeric_limits<double>::quiet_NaN());
  switch (kind) {
    case 0:  // constant NaN pattern (the unmeasured-RTT column shape)
      std::fill(v.begin(), v.end(), nan_bits);
      break;
    case 1:  // runs of a few distinct doubles + NaN stretches
      for (std::size_t i = 0; i < n; ++i)
        v[i] = (i / 23) % 4 == 3
                   ? nan_bits
                   : std::bit_cast<std::uint64_t>(0.25 * double((i / 23) % 4));
      break;
    default:  // adversarial: all-distinct bit patterns
      for (std::size_t i = 0; i < n; ++i) v[i] = rng();
      break;
  }
  return v;
}

// --- codec round-trips -------------------------------------------------------

TEST(Compress, ForRoundTripAcrossDistributions) {
  std::mt19937_64 rng{20180427};
  for (int kind = 0; kind < 4; ++kind) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      const auto v = u32_values(rng, kind, n);
      std::string buf;
      for_encode_chunk(buf, v.data(), v.size());

      // Encoding the same values twice is byte-identical (pure function).
      std::string buf2;
      for_encode_chunk(buf2, v.data(), v.size());
      EXPECT_EQ(buf, buf2);

      std::size_t off = 0;
      std::vector<std::uint32_t> out;
      for_decode_chunk(buf, off, n, out, "test");
      EXPECT_EQ(off, buf.size()) << "kind " << kind << " n " << n;
      EXPECT_EQ(out, v) << "kind " << kind << " n " << n;
    }
  }
}

TEST(Compress, ForKernelsMatchNaiveRecomputation) {
  std::mt19937_64 rng{11};
  for (int kind = 0; kind < 4; ++kind) {
    const auto v = u32_values(rng, kind, 500);
    std::string buf;
    for_encode_chunk(buf, v.data(), v.size());
    std::size_t off = 0;
    const auto view = for_parse_chunk(buf, off, v.size(), "test");

    for (std::size_t i = 0; i < v.size(); i += 13)
      EXPECT_EQ(for_value_at(view, i), v[i]) << "kind " << kind << " i " << i;

    const auto naive = [&](std::uint32_t lo, std::uint32_t hi) {
      std::size_t c = 0;
      for (const auto x : v) c += (x >= lo && x <= hi) ? 1 : 0;
      return c;
    };
    // Probe ranges that are fully inside, fully outside, and straddling
    // the chunk's [min, max] — the header short-circuit must agree with
    // the scan on all of them.
    const std::uint32_t probes[][2] = {
        {0, std::numeric_limits<std::uint32_t>::max()},
        {view.min, view.max},
        {view.min, view.min},
        {view.max, view.max},
        {0, view.min > 0 ? view.min - 1 : 0},
        {view.min / 2, view.min + (view.max - view.min) / 2},
    };
    for (const auto& p : probes)
      EXPECT_EQ(for_count_in_range(view, p[0], p[1]), naive(p[0], p[1]))
          << "kind " << kind << " [" << p[0] << "," << p[1] << "]";
  }
}

TEST(Compress, Rle8RoundTripAndCountEq) {
  std::mt19937_64 rng{12};
  for (int kind = 0; kind < 3; ++kind) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{501}}) {
      const auto v = u8_values(rng, kind, n);
      std::string buf;
      rle8_encode_chunk(buf, v.data(), v.size());
      std::size_t off = 0;
      std::vector<std::uint8_t> out;
      rle8_decode_chunk(buf, off, n, out, "test");
      EXPECT_EQ(off, buf.size());
      EXPECT_EQ(out, v) << "kind " << kind << " n " << n;

      off = 0;
      const auto view = rle8_parse_chunk(buf, off, n, "test");
      for (std::uint8_t probe = 0; probe < 8; ++probe) {
        std::size_t naive = 0;
        for (const auto x : v) naive += x == probe ? 1 : 0;
        EXPECT_EQ(rle_count_eq(view, probe), naive)
            << "kind " << kind << " probe " << int(probe);
      }
    }
  }
}

TEST(Compress, Rle64RoundTripPreservesNanPatterns) {
  std::mt19937_64 rng{13};
  for (int kind = 0; kind < 3; ++kind) {
    const auto v = u64_values(rng, kind, 400);
    std::string buf;
    rle64_encode_chunk(buf, v.data(), v.size());
    std::size_t off = 0;
    std::vector<std::uint64_t> out;
    rle64_decode_chunk(buf, off, v.size(), out, "test");
    EXPECT_EQ(off, buf.size());
    EXPECT_EQ(out, v) << "kind " << kind;  // exact bit patterns, NaNs included

    off = 0;
    const auto view = rle64_parse_chunk(buf, off, v.size(), "test");
    const auto probe = v.empty() ? 0 : v[v.size() / 2];
    std::size_t naive = 0;
    for (const auto x : v) naive += x == probe ? 1 : 0;
    EXPECT_EQ(rle_count_eq(view, probe), naive) << "kind " << kind;
  }
}

// --- canonical-form rejection ------------------------------------------------

void expect_corrupt_for(const std::string& chunk, std::size_t expect,
                        const std::string& what) {
  std::size_t off = 0;
  std::vector<std::uint32_t> out;
  try {
    for_decode_chunk(chunk, off, expect, out, "test");
    FAIL() << "decoder accepted " << what;
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::corrupt) << what;
  }
}

void expect_corrupt_rle8(const std::string& chunk, std::size_t expect,
                         const std::string& what) {
  std::size_t off = 0;
  std::vector<std::uint8_t> out;
  try {
    rle8_decode_chunk(chunk, off, expect, out, "test");
    FAIL() << "decoder accepted " << what;
  } catch (const serve::store_error& e) {
    EXPECT_EQ(e.kind(), serve::store_errc::corrupt) << what;
  }
}

TEST(Compress, NonCanonicalForChunksAreRejected) {
  // A canonical chunk to mutate: values 5..11, so min=5, max=11,
  // width=3, 21 packed bits — three spare trailing bits in the last
  // payload byte.
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 5; i <= 11; ++i) v.push_back(i);
  std::string good;
  for_encode_chunk(good, v.data(), v.size());

  // Header layout: count u64 | min u32 | max u32 | width u8 | bits.
  const std::size_t width_at = 16;

  {  // width larger than bit_width(max - min): non-minimal, rejected
    std::string bad = good;
    bad[width_at] = 4;
    expect_corrupt_for(bad, v.size(), "non-minimal bit width");
  }
  {  // width > 32 is structurally invalid
    std::string bad = good;
    bad[width_at] = 33;
    expect_corrupt_for(bad, v.size(), "bit width over 32");
  }
  {  // min > max
    std::string bad = good;
    bad[8] = 12;  // min low byte: 12 > max 11
    expect_corrupt_for(bad, v.size(), "min above max");
  }
  {  // header max not achieved by the data: claiming min=4 keeps
     // bit_width(11 - 4) == 3 and the deltas still decode, but the
     // largest decoded value becomes 4 + 6 = 10, not the header's 11 —
     // the achieved-extrema check fires
    std::string bad = good;
    bad[8] = 4;
    expect_corrupt_for(bad, v.size(), "unachieved header max");
  }
  {  // nonzero trailing bits in the last payload byte
    std::string bad = good;
    bad.back() = static_cast<char>(static_cast<unsigned char>(bad.back()) |
                                   0x80u);
    expect_corrupt_for(bad, v.size(), "nonzero trailing bits");
  }
  {  // count disagreeing with the block's row count
    expect_corrupt_for(good, v.size() + 1, "count/expect mismatch");
  }
  {  // truncated payload
    expect_corrupt_for(good.substr(0, good.size() - 1), v.size(),
                       "truncated payload");
  }
  {  // truncated header
    expect_corrupt_for(good.substr(0, 10), v.size(), "truncated header");
  }
}

TEST(Compress, NonCanonicalRleChunksAreRejected) {
  const std::vector<std::uint8_t> v{1, 1, 1, 2, 2, 0};
  std::string good;
  rle8_encode_chunk(good, v.data(), v.size());
  // Layout: count u64 | nruns u64 | (value u8, len u32)*; runs are
  // (1,3) (2,2) (0,1) at offset 16, 5 bytes each.

  {  // zero-length run
    std::string bad = good;
    bad[16 + 1] = 0;  // first run's len -> 0
    expect_corrupt_rle8(bad, v.size(), "zero-length run");
  }
  {  // adjacent runs with equal values (should have merged)
    std::string bad = good;
    bad[16 + 5] = 1;  // second run's value -> 1, same as the first
    expect_corrupt_rle8(bad, v.size(), "mergeable adjacent runs");
  }
  {  // lengths no longer sum to count
    std::string bad = good;
    bad[16 + 1] = 4;  // first run len 3 -> 4
    expect_corrupt_rle8(bad, v.size(), "run-length sum mismatch");
  }
  {  // truncated mid-run
    expect_corrupt_rle8(good.substr(0, good.size() - 2), v.size(),
                        "truncated run record");
  }
}

// --- catalog-level: v2 store parity and version compatibility ----------------

serve::catalog build_catalog(std::uint64_t seed, std::size_t epochs) {
  const auto s = eval::scenario::build(eval::small_scenario_config(seed));
  serve::catalog cat;
  auto pcfg = s.cfg.pipeline;
  for (std::size_t e = 0; e < epochs; ++e) {
    cat.ingest(s.w, s.view, s.run_inference(pcfg), "e0" + std::to_string(e));
    pcfg.seed += 1;
  }
  return cat;
}

/// A battery of query shapes asked of both catalogs and compared —
/// compressed persistence must be invisible to the query layer.
void expect_query_parity(const serve::catalog& a, const serve::catalog& b) {
  ASSERT_EQ(a.labels(), b.labels());
  for (const auto& label : a.labels()) {
    const auto qa = [&] { return serve::query(a).epoch(label); };
    const auto qb = [&] { return serve::query(b).epoch(label); };
    EXPECT_EQ(qa().count(), qb().count()) << label;
    EXPECT_EQ(qa().cls(infer::peering_class::remote).count(),
              qb().cls(infer::peering_class::remote).count())
        << label;
    EXPECT_EQ(qa().rtt_between(0.0, 2.0).count(),
              qb().rtt_between(0.0, 2.0).count())
        << label;
    const auto ga = qa().by_step().group_counts();
    const auto gb = qb().by_step().group_counts();
    ASSERT_EQ(ga.size(), gb.size()) << label;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i].key, gb[i].key) << label;
      EXPECT_EQ(ga[i].count, gb[i].count) << label;
    }
    const auto ra = qa().sort_by_rtt().page(2, 9).rows();
    const auto rb = qb().sort_by_rtt().page(2, 9).rows();
    ASSERT_EQ(ra.size(), rb.size()) << label;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].ip.value(), rb[i].ip.value()) << label;
      EXPECT_EQ(ra[i].cls, rb[i].cls) << label;
    }
  }
}

TEST(CompressStore, V2RoundTripMatchesMemoryAndV1) {
  const auto cat = build_catalog(91, 3);
  const auto p2 = temp_path("compress_v2.opwatc");
  const auto p1 = temp_path("compress_v1.opwatc");
  cat.save(p2);     // default writer: v2
  cat.save(p1, 1);  // pinned v1 writer

  const auto info2 = serve::store_inspect(read_bytes(p2));
  EXPECT_EQ(info2.version, 2u);
  ASSERT_EQ(info2.column_codecs.size(), 3u);
  // At least one column of the realistic snapshot actually compresses
  // (class/step columns are runs of a few values).
  std::size_t encoded = 0;
  for (const auto& rec : info2.column_codecs)
    for (const auto c : rec)
      encoded += c != 0 ? 1 : 0;
  EXPECT_GT(encoded, 0u);

  const auto info1 = serve::store_inspect(read_bytes(p1));
  EXPECT_EQ(info1.version, 1u);
  for (const auto& rec : info1.column_codecs)
    for (const auto c : rec) EXPECT_EQ(c, 0u);

  // Compression pays: the v2 image is smaller than the raw v1 image.
  EXPECT_LT(read_bytes(p2).size(), read_bytes(p1).size());

  const auto from_v2 = serve::catalog::load(p2);
  const auto from_v1 = serve::catalog::load(p1);
  expect_query_parity(cat, from_v2);
  expect_query_parity(from_v1, from_v2);
}

TEST(CompressStore, BothVersionsResaveByteStably) {
  const auto cat = build_catalog(17, 2);
  for (const std::uint32_t ver : {1u, 2u}) {
    const auto p = temp_path("resave_a_v" + std::to_string(ver) + ".opwatc");
    const auto q = temp_path("resave_b_v" + std::to_string(ver) + ".opwatc");
    cat.save(p, ver);
    serve::catalog::load(p).save(q, ver);
    EXPECT_EQ(read_bytes(p), read_bytes(q)) << "version " << ver;
  }
}

TEST(CompressStore, AppendWritesTheFilesOwnVersion) {
  const auto s = eval::scenario::build(eval::small_scenario_config(5));
  serve::catalog cat;
  auto pcfg = s.cfg.pipeline;
  cat.ingest(s.w, s.view, s.run_inference(pcfg), "e00");

  for (const std::uint32_t ver : {1u, 2u}) {
    const auto p = temp_path("append_v" + std::to_string(ver) + ".opwatc");
    cat.save(p, ver);

    serve::catalog grown = serve::catalog::load(p);
    pcfg.seed += 1;
    const auto eid = grown.ingest(s.w, s.view, s.run_inference(pcfg), "e01");
    grown.append_epoch(p, eid);
    pcfg.seed -= 1;

    // The appended file stays in its own version and equals a full
    // save of the grown catalog in that version.
    const auto full = temp_path("append_full_v" + std::to_string(ver) +
                                ".opwatc");
    grown.save(full, ver);
    EXPECT_EQ(read_bytes(p), read_bytes(full)) << "version " << ver;
    EXPECT_EQ(serve::store_inspect(read_bytes(p)).version, ver);
  }
}

// --- corruption injection in compressed sections -----------------------------

constexpr std::uint32_t k_sec_columns = 5;

/// Offsets of every columns-section header in a v2 image, via the
/// framing walk (section id is the first u32 of each header).
std::vector<std::size_t> columns_sections(const std::string& bytes) {
  std::vector<std::size_t> out;
  for (const auto b : serve::store_section_boundaries(bytes)) {
    if (b + serve::k_store_section_header_size > bytes.size()) continue;
    std::uint32_t id = 0;
    for (int i = 3; i >= 0; --i)
      id = (id << 8) | static_cast<unsigned char>(bytes[b + std::size_t(i)]);
    if (id == k_sec_columns) out.push_back(b);
  }
  return out;
}

std::uint64_t read_u64(const std::string& bytes, std::size_t at) {
  std::uint64_t x = 0;
  for (int i = 7; i >= 0; --i)
    x = (x << 8) | static_cast<unsigned char>(bytes[at + std::size_t(i)]);
  return x;
}

/// Re-computes the section's payload CRC after a payload mutation, so
/// the corruption reaches the codec validators instead of being caught
/// by the checksum layer.
void repatch_section_crc(std::string& bytes, std::size_t sec_at) {
  const auto len = read_u64(bytes, sec_at + 4);
  const auto payload_at = sec_at + serve::k_store_section_header_size;
  const auto crc = util::crc32(bytes.data() + payload_at, len);
  for (int i = 0; i < 4; ++i)
    bytes[sec_at + 12 + std::size_t(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
}

void expect_typed_load_failure(const std::string& bytes,
                               const std::string& what) {
  const auto p = temp_path("compress_corrupt.opwatc");
  write_bytes(p, bytes);
  try {
    const auto loaded = serve::catalog::load(p);
    FAIL() << "load accepted corrupt input: " << what;
  } catch (const serve::store_error& e) {
    EXPECT_GT(std::string_view{e.what()}.size(), 10u) << what;
  } catch (const serve::catalog_error& e) {
    EXPECT_GT(std::string_view{e.what()}.size(), 10u) << what;
  }
}

class CompressCorruptTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto cat = build_catalog(91, 2);
    const auto p = temp_path("compress_corrupt_base.opwatc");
    cat.save(p);  // v2
    bytes_ = new std::string{read_bytes(p)};
  }
  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
  }
  static std::string* bytes_;
};

std::string* CompressCorruptTest::bytes_ = nullptr;

TEST_F(CompressCorruptTest, RepatchedPayloadFlipsNeverEscapeTheTypedTaxonomy) {
  // With the section CRC repaired, a payload flip reaches the codec
  // validators.  The outcome must be one of exactly two things: a
  // typed store/catalog error (structural rule violated) or a clean
  // load of different data (e.g. a flipped raw byte) — never UB or an
  // untyped escape.  The canonical rules must also have teeth: across
  // the stride, a healthy share of flips is rejected even though the
  // checksum no longer disagrees.
  const auto secs = columns_sections(*bytes_);
  ASSERT_FALSE(secs.empty());
  const auto p = temp_path("compress_flip.opwatc");
  std::size_t rejected = 0;
  std::size_t accepted = 0;
  for (const auto sec : secs) {
    const auto len = read_u64(*bytes_, sec + 4);
    const auto payload_at = sec + serve::k_store_section_header_size;
    for (std::size_t o = 0; o < len; o += 17) {
      std::string flipped = *bytes_;
      flipped[payload_at + o] = static_cast<char>(
          static_cast<unsigned char>(flipped[payload_at + o]) ^ 0x40u);
      repatch_section_crc(flipped, sec);
      write_bytes(p, flipped);
      try {
        (void)serve::catalog::load(p);
        ++accepted;
      } catch (const serve::store_error&) {
        ++rejected;
      } catch (const serve::catalog_error&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  // Sanity on the harness itself: the stride covered real payload.
  EXPECT_GT(rejected + accepted, 20u);
}

/// Walks the nine `codec u8 | length u64 | payload` column frames of a
/// v2 columns section, returning (frame offset, codec) pairs.
std::vector<std::pair<std::size_t, std::uint8_t>> column_frames(
    const std::string& bytes, std::size_t sec_at) {
  const auto len = read_u64(bytes, sec_at + 4);
  std::size_t off = sec_at + serve::k_store_section_header_size;
  const auto end = off + len;
  std::vector<std::pair<std::size_t, std::uint8_t>> frames;
  for (int col = 0; col < 9; ++col) {
    frames.emplace_back(off, static_cast<std::uint8_t>(
                                 static_cast<unsigned char>(bytes[off])));
    off += 1 + 8 + read_u64(bytes, off + 1);
  }
  EXPECT_EQ(off, end);
  return frames;
}

TEST_F(CompressCorruptTest, ChunkCountFlipsInEncodedFramesAreTypedErrors) {
  const auto secs = columns_sections(*bytes_);
  ASSERT_FALSE(secs.empty());
  std::size_t encoded_frames = 0;
  for (const auto& [off, codec] : column_frames(*bytes_, secs[0])) {
    if (codec == 0) continue;  // raw: no chunk structure to violate
    ++encoded_frames;
    // Every encoded frame starts with its first chunk's count u64; a
    // flipped low byte disagrees with the block's row count.
    std::string bad = *bytes_;
    bad[off + 9] = static_cast<char>(
        static_cast<unsigned char>(bad[off + 9]) ^ 0x01u);
    repatch_section_crc(bad, secs[0]);
    expect_typed_load_failure(bad, "chunk count flip at frame +" +
                                       std::to_string(off));
  }
  EXPECT_GT(encoded_frames, 0u);
}

TEST_F(CompressCorruptTest, InvalidBitWidthIsTypedError) {
  const auto secs = columns_sections(*bytes_);
  ASSERT_FALSE(secs.empty());
  bool found = false;
  for (const auto sec : secs) {
    for (const auto& [off, codec] : column_frames(*bytes_, sec)) {
      if (codec != 1) continue;  // want a FOR frame
      found = true;
      // FOR chunk: count u64 | min u32 | max u32 | width u8 — the
      // width byte sits 16 bytes into the chunk.
      std::string bad = *bytes_;
      bad[off + 9 + 16] = 33;  // no u32 delta needs 33 bits
      repatch_section_crc(bad, sec);
      const auto p = temp_path("compress_badwidth.opwatc");
      write_bytes(p, bad);
      try {
        (void)serve::catalog::load(p);
        FAIL() << "load accepted an invalid bit width";
      } catch (const serve::store_error& e) {
        EXPECT_EQ(e.kind(), serve::store_errc::corrupt);
        EXPECT_NE(std::string_view{e.what()}.find("bit width"),
                  std::string_view::npos);
      }
    }
  }
  EXPECT_TRUE(found) << "no FOR-compressed column in the v2 snapshot";
}

TEST_F(CompressCorruptTest, InvalidCodecByteIsTypedError) {
  const auto secs = columns_sections(*bytes_);
  ASSERT_FALSE(secs.empty());
  // The first byte of the columns payload is the ip column's codec id.
  for (const std::uint8_t bad : {std::uint8_t{2},     // rle8 on a u32 column
                                 std::uint8_t{3},     // rle64 on a u32 column
                                 std::uint8_t{9},     // unknown codec
                                 std::uint8_t{255}}) {
    std::string flipped = *bytes_;
    flipped[secs[0] + serve::k_store_section_header_size] =
        static_cast<char>(bad);
    repatch_section_crc(flipped, secs[0]);
    expect_typed_load_failure(flipped, "codec byte " + std::to_string(bad));
  }
}

TEST_F(CompressCorruptTest, TruncationInsideCompressedPayloadIsTypedError) {
  const auto secs = columns_sections(*bytes_);
  ASSERT_FALSE(secs.empty());
  const auto payload_at = secs[0] + serve::k_store_section_header_size;
  const auto len = read_u64(*bytes_, secs[0] + 4);
  // Cut the file inside the compressed payload — including right after
  // a codec byte and mid-chunk — leaving the recorded section length
  // pointing past EOF.
  for (const std::size_t cut :
       {payload_at + 1, payload_at + 9, payload_at + len / 2,
        payload_at + len - 1}) {
    expect_typed_load_failure(bytes_->substr(0, cut),
                              "truncated at " + std::to_string(cut));
  }
}

}  // namespace
