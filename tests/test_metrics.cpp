// Table 3 metric definitions on hand-constructed inference/validation sets.
#include <gtest/gtest.h>

#include "opwat/eval/metrics.hpp"

namespace {

using namespace opwat;
using namespace opwat::eval;
using infer::iface_key;
using infer::inference_map;
using infer::method_step;
using infer::peering_class;

iface_key key(std::uint32_t n) { return {0, net::ipv4_addr{n}}; }

TEST(Metrics, PerfectInference) {
  inference_map inf;
  validation_sets vd;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const bool remote = i < 4;
    inf.decide(key(i), remote ? peering_class::remote : peering_class::local,
               method_step::rtt_colo);
    (remote ? vd.remote : vd.local).insert(key(i));
  }
  const auto m = compute_metrics(inf, vd);
  EXPECT_DOUBLE_EQ(m.cov, 1.0);
  EXPECT_DOUBLE_EQ(m.acc, 1.0);
  EXPECT_DOUBLE_EQ(m.pre, 1.0);
  EXPECT_DOUBLE_EQ(m.fpr, 0.0);
  EXPECT_DOUBLE_EQ(m.fnr, 0.0);
}

TEST(Metrics, HandComputedMix) {
  // VD: 4 remote (r0..r3), 6 local (l0..l5).
  // INF: r0,r1 -> remote (TP); r2 -> local (FN); r3 unknown;
  //      l0..l3 -> local (TN); l4 -> remote (FP); l5 unknown.
  inference_map inf;
  validation_sets vd;
  for (std::uint32_t i = 0; i < 4; ++i) vd.remote.insert(key(i));
  for (std::uint32_t i = 10; i < 16; ++i) vd.local.insert(key(i));
  inf.decide(key(0), peering_class::remote, method_step::rtt_colo);
  inf.decide(key(1), peering_class::remote, method_step::rtt_colo);
  inf.decide(key(2), peering_class::local, method_step::rtt_colo);
  for (std::uint32_t i = 10; i < 14; ++i)
    inf.decide(key(i), peering_class::local, method_step::rtt_colo);
  inf.decide(key(14), peering_class::remote, method_step::rtt_colo);

  const auto m = compute_metrics(inf, vd);
  EXPECT_DOUBLE_EQ(m.cov, 8.0 / 10.0);          // 8 of 10 validated inferred
  EXPECT_DOUBLE_EQ(m.fpr, 1.0 / 5.0);           // 1 FP of 5 inferred VD_L
  EXPECT_DOUBLE_EQ(m.fnr, 1.0 / 3.0);           // 1 FN of 3 inferred VD_R
  EXPECT_DOUBLE_EQ(m.pre, 2.0 / 3.0);           // 2 TP of 3 inferred-remote
  EXPECT_DOUBLE_EQ(m.acc, (2.0 + 4.0) / 8.0);   // (TP+TN)/|INF∩VD|
  EXPECT_EQ(m.inferred_in_vd, 8u);
  EXPECT_EQ(m.vd_size, 10u);
}

TEST(Metrics, InferencesOutsideVdIgnored) {
  inference_map inf;
  validation_sets vd;
  vd.remote.insert(key(1));
  inf.decide(key(1), peering_class::remote, method_step::rtt_colo);
  inf.decide(key(99), peering_class::remote, method_step::rtt_colo);  // not in VD
  const auto m = compute_metrics(inf, vd);
  EXPECT_DOUBLE_EQ(m.pre, 1.0);
  EXPECT_EQ(m.inferred_in_vd, 1u);
}

TEST(Metrics, UnknownDoesNotCount) {
  inference_map inf;
  validation_sets vd;
  vd.remote.insert(key(1));
  inf.annotate_rtt(key(1), 5.0);  // creates an entry but leaves it unknown
  const auto m = compute_metrics(inf, vd);
  EXPECT_DOUBLE_EQ(m.cov, 0.0);
  EXPECT_EQ(m.inferred_in_vd, 0u);
}

TEST(Metrics, EmptyValidationYieldsZeros) {
  inference_map inf;
  inf.decide(key(0), peering_class::remote, method_step::rtt_colo);
  const auto m = compute_metrics(inf, {});
  EXPECT_DOUBLE_EQ(m.cov, 0.0);
  EXPECT_DOUBLE_EQ(m.acc, 0.0);
}

TEST(Metrics, PerStepRestriction) {
  inference_map inf;
  validation_sets vd;
  vd.remote.insert(key(0));
  vd.remote.insert(key(1));
  inf.decide(key(0), peering_class::remote, method_step::port_capacity);
  inf.decide(key(1), peering_class::remote, method_step::rtt_colo);
  const auto m1 = compute_metrics_for_step(inf, vd, method_step::port_capacity);
  EXPECT_EQ(m1.inferred_in_vd, 1u);
  EXPECT_DOUBLE_EQ(m1.cov, 0.5);
  const auto all = compute_metrics(inf, vd);
  EXPECT_EQ(all.inferred_in_vd, 2u);
}

TEST(Metrics, AccIdentity) {
  // ACC * |INF| == TP + TN by construction.
  inference_map inf;
  validation_sets vd;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const bool remote = i % 3 == 0;
    (remote ? vd.remote : vd.local).insert(key(i));
    const bool correct = i % 4 != 0;
    const auto cls = (remote == correct) ? peering_class::remote : peering_class::local;
    inf.decide(key(i), cls, method_step::rtt_colo);
  }
  const auto m = compute_metrics(inf, vd);
  EXPECT_NEAR(m.acc * static_cast<double>(m.inferred_in_vd),
              static_cast<double>(m.true_remote + m.true_local), 1e-9);
}

TEST(InferenceMap, DecideDoesNotOverwrite) {
  inference_map inf;
  EXPECT_TRUE(inf.decide(key(0), peering_class::remote, method_step::port_capacity));
  EXPECT_FALSE(inf.decide(key(0), peering_class::local, method_step::rtt_colo));
  EXPECT_EQ(inf.cls(key(0)), peering_class::remote);
  EXPECT_EQ(inf.find(key(0))->step, method_step::port_capacity);
}

TEST(InferenceMap, CountsByClass) {
  inference_map inf;
  inf.decide(key(0), peering_class::remote, method_step::rtt_colo);
  inf.decide(key(1), peering_class::local, method_step::rtt_colo);
  inf.decide(key(2), peering_class::local, method_step::rtt_colo);
  inf.annotate_rtt(key(3), 1.0);
  EXPECT_EQ(inf.count(peering_class::remote), 1u);
  EXPECT_EQ(inf.count(peering_class::local), 2u);
  // Annotating an undecided interface must NOT create a phantom entry:
  // items() and the class counts track decisions only.
  EXPECT_EQ(inf.count(peering_class::unknown), 0u);
  EXPECT_EQ(inf.items().size(), 3u);
  EXPECT_EQ(inf.find(key(3)), nullptr);
  EXPECT_DOUBLE_EQ(inf.rtt_min_ms(key(3)), 1.0);
  // The parked annotation is folded in when a step decides the key.
  inf.decide(key(3), peering_class::local, method_step::rtt_colo);
  ASSERT_NE(inf.find(key(3)), nullptr);
  EXPECT_DOUBLE_EQ(inf.find(key(3))->rtt_min_ms, 1.0);
}

TEST(ValidationSets, MergeAndContains) {
  validation_sets a, b;
  a.remote.insert(key(0));
  b.local.insert(key(1));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(key(0)));
  EXPECT_TRUE(a.contains(key(1)));
  EXPECT_FALSE(a.contains(key(2)));
}

}  // namespace
