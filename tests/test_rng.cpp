// Unit and property tests for the deterministic RNG and stable hashing.
#include <gtest/gtest.h>

#include <set>

#include "opwat/util/rng.hpp"

namespace {

using opwat::util::hash_combine;
using opwat::util::pair_hash_unordered;
using opwat::util::rng;
using opwat::util::splitmix64;
using opwat::util::stable_hash;

TEST(Rng, SameSeedSameSequence) {
  rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfDrawCount) {
  rng a{7};
  rng b{7};
  (void)a.next();
  (void)a.next();
  (void)a.next();
  // Forks depend only on (seed, tag), not on how much the parent was used.
  EXPECT_EQ(a.fork(5).next(), b.fork(5).next());
}

TEST(Rng, ForkByStringMatchesRepeatedCall) {
  rng a{7};
  EXPECT_EQ(a.fork("ping").next(), a.fork("ping").next());
  EXPECT_NE(a.fork("ping").next(), a.fork("pong").next());
}

TEST(Rng, StreamEqualsForkOfFork) {
  // stream(name, i) is documented as fork(name).fork(i): the per-shard
  // streams of the parallel executor must be reconstructible that way.
  rng a{7};
  EXPECT_EQ(a.stream("ping", 3).next(), a.fork("ping").fork(3).next());
}

TEST(Rng, StreamIndependentOfDrawsAndOtherStreams) {
  rng a{7}, b{7};
  (void)a.next();
  (void)a.stream("other", 1).next();
  EXPECT_EQ(a.stream("shard", 5).next(), b.stream("shard", 5).next());
}

TEST(Rng, StreamsDifferAcrossNamesAndIndices) {
  rng a{7};
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 64; ++i) firsts.insert(a.stream("shard", i).next());
  EXPECT_EQ(firsts.size(), 64u);
  EXPECT_NE(a.stream("shard", 0).next(), a.stream("drahs", 0).next());
}

TEST(Rng, Uniform01InRange) {
  rng r{3};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  rng r{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  rng r{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  rng r{5};
  EXPECT_EQ(r.uniform_int(4, 4), 4);
  EXPECT_EQ(r.uniform_int(9, 2), 9);  // lo >= hi returns lo
}

TEST(Rng, BernoulliExtremes) {
  rng r{6};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  rng r{8};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonPositiveMeanIsZero) {
  rng r{8};
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  rng r{9};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.15);
}

TEST(Rng, ParetoRespectsMinimum) {
  rng r{10};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ZipfInRange) {
  rng r{12};
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.zipf(50, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
  EXPECT_EQ(r.zipf(1, 1.2), 1);
}

TEST(Rng, ZipfSkewsLow) {
  rng r{13};
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (r.zipf(100, 1.3) <= 10) ++low;
  EXPECT_GT(low, n / 2);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  rng r{14};
  const double w[] = {1.0, 0.0, 2.0};
  for (int i = 0; i < 5000; ++i) EXPECT_NE(r.weighted_index(w), 1u);
}

TEST(Rng, WeightedIndexProportions) {
  rng r{15};
  const double w[] = {1.0, 3.0};
  int hits1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.weighted_index(w) == 1) ++hits1;
  EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.01);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  rng r{16};
  const auto idx = r.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> uniq{idx.begin(), idx.end()};
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  rng r{17};
  EXPECT_EQ(r.sample_indices(5, 10).size(), 5u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  rng r{18};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Hash, PairHashIsSymmetric) {
  EXPECT_EQ(pair_hash_unordered(3, 9), pair_hash_unordered(9, 3));
  EXPECT_NE(pair_hash_unordered(3, 9), pair_hash_unordered(3, 10));
}

TEST(Hash, StableHashConsistent) {
  EXPECT_EQ(stable_hash("abc"), stable_hash("abc"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

TEST(Hash, SplitmixAvalanche) {
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// Property sweep: every seed yields in-range draws and reproducibility.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ReproducibleAndInRange) {
  rng a{GetParam()}, b{GetParam()};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next(), b.next());
    const double u = a.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    (void)b.uniform(2.0, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL, 12345678901234ULL));

}  // namespace
