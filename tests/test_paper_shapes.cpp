// End-to-end assertions of the paper's headline SHAPES on a generated
// scenario: who wins, by roughly what factor, and where the crossovers
// fall.  These are the regression guards for the reproduction itself.
#include <gtest/gtest.h>

#include <cmath>

#include "opwat/eval/metrics.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/geo/metro.hpp"
#include "opwat/geo/speed_model.hpp"
#include "opwat/measure/ping.hpp"
#include "opwat/util/stats.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Mid-size scenario: large enough for stable fractions, small enough
    // for test time.
    eval::scenario_config cfg;
    cfg.world.n_ixps = 24;
    cfg.world.n_ases = 1200;
    cfg.world.largest_ixp_members = 300;
    cfg.world.remote_collector_count = 10;  // scale with the smaller world
    cfg.traceroute_sources = 1200;
    cfg.targets_per_source = 25;
    cfg.top_n_ixps = 12;
    s_ = new eval::scenario{eval::scenario::build(cfg)};
    pr_ = new infer::pipeline_result{s_->run_inference()};
  }
  static void TearDownTestSuite() {
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
};

eval::scenario* PaperShapes::s_ = nullptr;
infer::pipeline_result* PaperShapes::pr_ = nullptr;

TEST_F(PaperShapes, GroundTruthRemoteShareNearPaper) {
  // Paper: 28% of inferred interfaces are remote.
  std::size_t remote = 0;
  for (const auto& m : s_->w.memberships)
    if (s_->w.truly_remote(m)) ++remote;
  const double share =
      static_cast<double>(remote) / static_cast<double>(s_->w.memberships.size());
  EXPECT_GT(share, 0.18);
  EXPECT_LT(share, 0.40);
}

TEST_F(PaperShapes, PipelineBeatsBaselineOnEveryMetric) {
  // Table 4's crossover: the combined pipeline wins FPR, FNR, PRE and ACC.
  const auto& vd = s_->validation.test;
  const auto ours = eval::compute_metrics(pr_->inferences, vd);
  const auto base = eval::compute_metrics(infer::run_baseline_on(*pr_), vd);
  EXPECT_LT(ours.fpr, base.fpr + 1e-9);
  EXPECT_LT(ours.fnr, base.fnr);
  EXPECT_GT(ours.pre, base.pre);
  EXPECT_GT(ours.acc, base.acc);
}

TEST_F(PaperShapes, CombinedMetricsInPaperBallpark) {
  // Paper: ~95% ACC/PRE, ~93% COV.
  const auto m = eval::compute_metrics(pr_->inferences, s_->validation.test);
  EXPECT_GT(m.acc, 0.90);
  EXPECT_GT(m.pre, 0.85);
  EXPECT_GT(m.cov, 0.85);
}

TEST_F(PaperShapes, BaselineFnrExplodesOnNearbyRemotes) {
  // Paper: baseline FNR 25.7% vs combined 7.2% — a multiple.
  const auto& vd = s_->validation.test;
  const auto ours = eval::compute_metrics(pr_->inferences, vd);
  const auto base = eval::compute_metrics(infer::run_baseline_on(*pr_), vd);
  EXPECT_GT(base.fnr, 2.0 * ours.fnr);
}

TEST_F(PaperShapes, FractionalPortsAreRemoteOnly) {
  // Fig. 4: no local peer below the IXP's minimum physical capacity.
  for (const auto& m : s_->w.memberships) {
    if (m.port_capacity_gbps < s_->w.ixps[m.ixp].min_physical_capacity_gbps)
      EXPECT_TRUE(s_->w.truly_remote(m));
  }
}

TEST_F(PaperShapes, SomeRemotePeersLookLocalOnRtt) {
  // Fig. 1b: a visible share of remote peers sits within 10 ms.
  std::size_t remote_seen = 0, remote_fast = 0;
  for (const auto& [key, inf] : pr_->inferences.items()) {
    if (std::isnan(inf.rtt_min_ms)) continue;
    const auto mid = s_->w.membership_by_interface(key.ip);
    if (!mid || !s_->w.truly_remote(s_->w.memberships[*mid])) continue;
    ++remote_seen;
    if (inf.rtt_min_ms < 10.0) ++remote_fast;
  }
  ASSERT_GT(remote_seen, 20u);
  const double share =
      static_cast<double>(remote_fast) / static_cast<double>(remote_seen);
  EXPECT_GT(share, 0.10) << "no nearby remotes: the RTT-threshold trap vanished";
  EXPECT_LT(share, 0.80);
}

TEST_F(PaperShapes, WideAreaIxpsExistInMeaningfulShare) {
  // Fig. 2b: ~14% of IXPs are wide-area.
  std::size_t wide = 0, counted = 0;
  for (const auto& x : s_->w.ixps) {
    if (s_->w.memberships_of_ixp(x.id).size() < 2) continue;
    ++counted;
    if (geo::is_wide_area(s_->w.ixp_facility_points(x.id))) ++wide;
  }
  ASSERT_GT(counted, 0u);
  const double share = static_cast<double>(wide) / static_cast<double>(counted);
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.40);
}

TEST_F(PaperShapes, StepContributionsFollowPaperOrdering) {
  // Fig. 10a: Steps 2+3 dominate; Step 1 contributes a minority.
  std::size_t s1 = 0, s23 = 0;
  for (const auto x : pr_->scope) {
    s1 += pr_->contribution(x, infer::method_step::port_capacity);
    s23 += pr_->contribution(x, infer::method_step::rtt_colo);
  }
  EXPECT_GT(s23, s1);
  const auto inferred = pr_->inferences.count(peering_class::local) +
                        pr_->inferences.count(peering_class::remote);
  EXPECT_GT(static_cast<double>(s1) / static_cast<double>(inferred), 0.01);
  EXPECT_LT(static_cast<double>(s1) / static_cast<double>(inferred), 0.35);
}

TEST_F(PaperShapes, RemoteShareRisesWithIxpSize) {
  // §6.1: the largest IXPs have the highest remote shares (network
  // effect).  Compare the top third vs the bottom third of the scope.
  const auto share_of = [&](std::size_t from, std::size_t to) {
    std::size_t local = 0, remote = 0;
    for (std::size_t i = from; i < to && i < pr_->scope.size(); ++i) {
      local += pr_->count(pr_->scope[i], peering_class::local);
      remote += pr_->count(pr_->scope[i], peering_class::remote);
    }
    return local + remote ? static_cast<double>(remote) /
                                static_cast<double>(local + remote)
                          : 0.0;
  };
  const auto n = pr_->scope.size();
  EXPECT_GT(share_of(0, n / 3) + 0.08, share_of(2 * n / 3, n));
}

TEST_F(PaperShapes, LgRoundingObservedInCampaign) {
  // §6.1: many LG minimum RTTs are exactly integer milliseconds.
  std::size_t lg_measurements = 0, integer_valued = 0;
  for (const auto& pm : pr_->rtt.campaign.measurements) {
    if (!pm.responsive) continue;
    if (s_->vps[pm.vp_index].type != measure::vp_type::looking_glass) continue;
    ++lg_measurements;
    if (pm.rtt_min_ms == std::floor(pm.rtt_min_ms)) ++integer_valued;
  }
  ASSERT_GT(lg_measurements, 50u);
  EXPECT_GT(static_cast<double>(integer_valued) / static_cast<double>(lg_measurements),
            0.2);
}

TEST_F(PaperShapes, UnknownRateMatchesCoverageTarget) {
  // Paper coverage 93% -> unknowns are a sliver, not a mass.  Measured
  // against the merged view's member interfaces (items() holds decided
  // interfaces only, so the undecided share comes from the denominator).
  std::size_t total = 0;
  for (const auto x : pr_->scope) total += s_->view.interfaces_of_ixp(x).size();
  const auto decided = pr_->inferences.items().size();
  ASSERT_GT(total, 0u);
  EXPECT_LT(1.0 - static_cast<double>(decided) / static_cast<double>(total), 0.20);
}

}  // namespace
