// Hand-built scenario tests for each inference step: the Fig. 3 multi-IXP
// router cases, the Step-3 feasible-ring rules (Fig. 7), the Step-1 port
// rule and the Step-5 facility vote.
#include <gtest/gtest.h>

#include "opwat/alias/resolver.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/infer/baseline.hpp"
#include "opwat/infer/step1_port.hpp"
#include "opwat/infer/step3_colo.hpp"
#include "opwat/infer/step4_multiixp.hpp"
#include "opwat/infer/step5_private.hpp"
#include "opwat/world/cities.hpp"

namespace {

using namespace opwat;
using namespace opwat::infer;

constexpr net::asn kMember{100};
constexpr net::asn kNeighbor1{201};
constexpr net::asn kNeighbor2{202};

// Facility ids in the hand-built world.
constexpr world::facility_id kFacAms = 0;     // IXP facility, Amsterdam
constexpr world::facility_id kFacLon = 1;     // IXP facility, London (wide-area)
constexpr world::facility_id kFacAmsOther = 2;  // non-IXP facility, Amsterdam
constexpr world::facility_id kFacPar = 3;     // non-IXP facility, Paris

geo::geo_point city(const char* name) { return world::find_city(name)->location; }

/// A single wide-area IXP (id 0, facilities AMS + LON) with one member
/// interface 193.0.0.10 owned by AS100; second IXP (id 1) used by the
/// multi-IXP tests.
db::merged_view make_view(double member_cap = 1.0, double cmin = 1.0,
                          std::vector<world::facility_id> member_facs = {kFacAms},
                          std::vector<world::facility_id> n1_facs = {kFacAms},
                          std::vector<world::facility_id> n2_facs = {kFacAms}) {
  db::snapshot s;
  s.kind = db::source_kind::website;
  s.prefixes.push_back({*net::prefix::parse("193.0.0.0/24"), 0});
  s.prefixes.push_back({*net::prefix::parse("193.0.1.0/24"), 1});
  s.interfaces.push_back({*net::ipv4_addr::parse("193.0.0.10"), kMember, 0});
  s.interfaces.push_back({*net::ipv4_addr::parse("193.0.1.10"), kMember, 1});
  s.ixp_facilities.push_back({0, kFacAms});
  s.ixp_facilities.push_back({0, kFacLon});
  s.ixp_facilities.push_back({1, kFacAms});  // IXP1 shares the AMS site
  for (const auto f : member_facs) s.as_facilities.push_back({kMember, f});
  for (const auto f : n1_facs) s.as_facilities.push_back({kNeighbor1, f});
  for (const auto f : n2_facs) s.as_facilities.push_back({kNeighbor2, f});
  s.facility_geos.push_back({kFacAms, city("Amsterdam")});
  s.facility_geos.push_back({kFacLon, city("London")});
  s.facility_geos.push_back({kFacAmsOther, geo::offset_km(city("Amsterdam"), 90, 8)});
  s.facility_geos.push_back({kFacPar, city("Paris")});
  s.ports.push_back({kMember, 0, member_cap});
  s.ixp_meta.push_back({0, "IX-test", cmin, true});
  s.ixp_meta.push_back({1, "IX-test-2", cmin, true});
  const std::vector<db::snapshot> snaps{s};
  return db::merged_view::build(snaps);
}

measure::vantage_point ams_vp() {
  measure::vantage_point vp;
  vp.name = "lg.test";
  vp.type = measure::vp_type::looking_glass;
  vp.ixp = 0;
  vp.facility = kFacAms;
  vp.location = city("Amsterdam");
  vp.in_peering_lan = true;
  return vp;
}

iface_key member_key() { return {0, *net::ipv4_addr::parse("193.0.0.10")}; }

// ---------------------------------------------------------------------------
// Step 1.

TEST(Step1, FractionalPortIsRemote) {
  const auto view = make_view(/*member_cap=*/0.1, /*cmin=*/1.0);
  inference_map out;
  const world::ixp_id scope[] = {0};
  const auto st = run_step1_port_capacity(view, scope, out);
  EXPECT_EQ(st.inferred_remote, 1u);
  EXPECT_EQ(out.cls(member_key()), peering_class::remote);
  EXPECT_EQ(out.find(member_key())->step, method_step::port_capacity);
}

TEST(Step1, FullPortMakesNoInference) {
  const auto view = make_view(/*member_cap=*/10.0, /*cmin=*/1.0);
  inference_map out;
  const world::ixp_id scope[] = {0};
  run_step1_port_capacity(view, scope, out);
  EXPECT_EQ(out.cls(member_key()), peering_class::unknown);
}

TEST(Step1, ExactlyCminIsNotFractional) {
  const auto view = make_view(/*member_cap=*/1.0, /*cmin=*/1.0);
  inference_map out;
  const world::ixp_id scope[] = {0};
  run_step1_port_capacity(view, scope, out);
  EXPECT_EQ(out.cls(member_key()), peering_class::unknown);
}

TEST(Step1, TenGigCminCatchesOneGigResellerPort) {
  const auto view = make_view(/*member_cap=*/1.0, /*cmin=*/10.0);
  inference_map out;
  const world::ixp_id scope[] = {0};
  run_step1_port_capacity(view, scope, out);
  EXPECT_EQ(out.cls(member_key()), peering_class::remote);
}

// ---------------------------------------------------------------------------
// Step 3 (evaluate_ring): the Fig. 7 wide-area geometry.

rtt_observation obs(double rtt, bool rounded = false) {
  return {.vp_index = 0, .rtt_min_ms = rtt, .rounded = rounded};
}

TEST(Step3, SubMillisecondColocatedIsLocal) {
  const auto view = make_view();
  int feas = 0;
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(0.3), {}, &feas);
  EXPECT_EQ(v, ring_verdict::local);
  EXPECT_GE(feas, 1);
}

TEST(Step3, WideAreaMemberAtDistantSiteIsLocal) {
  // Fig. 7: 4 ms from Amsterdam puts London (~357 km) inside the ring
  // [299, 532] km; a member colocated there is LOCAL despite the "high"
  // RTT that the 2 ms threshold would call remote.
  const auto view = make_view(1.0, 1.0, {kFacLon});
  int feas = 0;
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(4.0), {}, &feas);
  EXPECT_EQ(v, ring_verdict::local);
  EXPECT_EQ(feas, 1);  // only London feasible at 4 ms
}

TEST(Step3, NoFeasibleIxpFacilityIsRemote) {
  // 50 ms from Amsterdam: both AMS (0 km) and LON (357 km) fall outside
  // the ring [~5400, 6660] km.
  const auto view = make_view();
  int feas = 0;
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(50.0), {}, &feas);
  EXPECT_EQ(v, ring_verdict::remote);
  EXPECT_EQ(feas, 0);
}

TEST(Step3, MemberAtFeasibleNonIxpFacilityIsRemote) {
  // Low RTT, but the member's only presence is a nearby NON-IXP facility:
  // the Rotterdam case — close yet remote.
  const auto view = make_view(1.0, 1.0, {kFacAmsOther});
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(0.5), {}, nullptr);
  EXPECT_EQ(v, ring_verdict::remote);
}

TEST(Step3, FeasibleIxpButUnknownMemberLocationIsUnknown) {
  // Member's colocation data absent (or only infeasible): no inference.
  const auto view = make_view(1.0, 1.0, {kFacPar});  // Paris not feasible at 0.5 ms
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(0.5), {}, nullptr);
  EXPECT_EQ(v, ring_verdict::unknown);
}

TEST(Step3, MemberAtAmsNotFeasibleAtFourMs) {
  // 4 ms cannot come from the same metro: the colocated-at-AMS member is
  // NOT placed local by this observation (inner ring excludes AMS).
  const auto view = make_view(1.0, 1.0, {kFacAms});
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(4.0), {}, nullptr);
  EXPECT_NE(v, ring_verdict::local);
}

TEST(Step3, RoundedRttRelaxesInnerBound) {
  // A rounded 1 ms reading must not exclude the same-facility member:
  // d_min is computed from RTT-1 = 0 ms.
  const auto view = make_view(1.0, 1.0, {kFacAms});
  const auto v = evaluate_ring(view, ams_vp(), 0, kMember, obs(1.0, true), {}, nullptr);
  EXPECT_EQ(v, ring_verdict::local);
}

TEST(Step3, RunAggregatesVotesAcrossVps) {
  const auto view = make_view();
  const std::vector<measure::vantage_point> vps{ams_vp()};
  step2_result rtts;
  rtts.observations[member_key()] = {obs(0.3)};
  inference_map out;
  const auto st = run_step3_colo(view, vps, rtts, {}, out);
  EXPECT_EQ(st.decided_local, 1u);
  EXPECT_EQ(out.cls(member_key()), peering_class::local);
  EXPECT_EQ(out.find(member_key())->step, method_step::rtt_colo);
  EXPECT_GE(out.find(member_key())->feasible_ixp_facilities, 1);
}

TEST(Step3, LocalEvidenceBeatsRemoteVote) {
  // One VP sees the member locally, another (far wide-area site) votes
  // remote: local wins (§5.2's wide-area false-positive fix).
  const auto view = make_view();
  auto vp_lon = ams_vp();
  vp_lon.facility = kFacLon;
  vp_lon.location = city("London");
  const std::vector<measure::vantage_point> vps{ams_vp(), vp_lon};
  step2_result rtts;
  rtts.observations[member_key()] = {
      {.vp_index = 0, .rtt_min_ms = 0.3, .rounded = false},  // AMS: local
      {.vp_index = 1, .rtt_min_ms = 40.0, .rounded = false}  // LON: looks remote
  };
  inference_map out;
  run_step3_colo(view, vps, rtts, {}, out);
  EXPECT_EQ(out.cls(member_key()), peering_class::local);
}

TEST(Step3, DoesNotOverwriteStep1) {
  const auto view = make_view(0.1, 1.0);
  inference_map out;
  const world::ixp_id scope[] = {0};
  run_step1_port_capacity(view, scope, out);
  const std::vector<measure::vantage_point> vps{ams_vp()};
  step2_result rtts;
  rtts.observations[member_key()] = {obs(0.3)};  // would say local
  run_step3_colo(view, vps, rtts, {}, out);
  EXPECT_EQ(out.cls(member_key()), peering_class::remote);
  EXPECT_EQ(out.find(member_key())->step, method_step::port_capacity);
}

// ---------------------------------------------------------------------------
// Step 4: hand-built world with one AS whose router touches two IXPs.

constexpr world::ixp_id kScope[] = {0, 1};

struct multi_ixp_fixture {
  world::world w;
  db::merged_view view = make_view();
  traix::extraction paths;

  multi_ixp_fixture() {
    world::autonomous_system as;
    as.id = 0;
    as.asn = kMember;
    as.backbone = *net::prefix::parse("10.0.0.0/20");
    w.ases.push_back(as);
    world::router rt;
    rt.id = 0;
    rt.owner = 0;
    rt.city = 0;
    rt.interfaces = {*net::ipv4_addr::parse("10.0.0.1"),
                     *net::ipv4_addr::parse("10.0.0.2")};
    w.routers.push_back(rt);
    world::city c;
    c.id = 0;
    c.name = "Amsterdam";
    c.location = city("Amsterdam");
    w.cities.push_back(c);
    w.finalize();
    // Adjacencies: the same router's interfaces seen entering IXP0 and
    // IXP1 (whose member interfaces exist in the view).
    paths.adjacencies.push_back({*net::ipv4_addr::parse("10.0.0.1"), kMember, 0});
    paths.adjacencies.push_back({*net::ipv4_addr::parse("10.0.0.2"), kMember, 1});
  }
};

TEST(Step4, LocalAnchorPropagatesViaSharedFacility) {
  // Fig. 3a: IXP0 and IXP1 share the AMS facility; AS inferred local at
  // IXP0 -> local at IXP1.
  multi_ixp_fixture f;
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  out.decide({0, *net::ipv4_addr::parse("193.0.0.10")}, peering_class::local,
             method_step::rtt_colo);
  const auto st = run_step4_multi_ixp(f.view, f.paths, resolve, kScope, out);
  EXPECT_EQ(out.cls({1, *net::ipv4_addr::parse("193.0.1.10")}), peering_class::local);
  EXPECT_GE(st.decided, 1u);
  bool found_local_router = false;
  for (const auto& r : st.routers)
    if (r.ixps.size() == 2 && r.kind == router_kind::local) found_local_router = true;
  EXPECT_TRUE(found_local_router);
}

TEST(Step4, RemoteAnchorPropagatesWhenIxpsShareFacility) {
  // Fig. 3b via condition 2(a).
  multi_ixp_fixture f;
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  out.decide({0, *net::ipv4_addr::parse("193.0.0.10")}, peering_class::remote,
             method_step::port_capacity);
  run_step4_multi_ixp(f.view, f.paths, resolve, kScope, out);
  EXPECT_EQ(out.cls({1, *net::ipv4_addr::parse("193.0.1.10")}), peering_class::remote);
}

TEST(Step4, NoAnchorNoDecision) {
  multi_ixp_fixture f;
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  const auto st = run_step4_multi_ixp(f.view, f.paths, resolve, kScope, out);
  EXPECT_EQ(st.decided, 0u);
  EXPECT_EQ(out.cls({1, *net::ipv4_addr::parse("193.0.1.10")}), peering_class::unknown);
  bool found_undetermined = false;
  for (const auto& r : st.routers)
    if (r.kind == router_kind::undetermined) found_undetermined = true;
  EXPECT_TRUE(found_undetermined);
}

TEST(Step4, SplitAliasesPreventPropagation) {
  // With recall 0 the two interfaces stay separate routers: no multi-IXP
  // router, no propagation.
  multi_ixp_fixture f;
  const alias::resolver resolve{f.w, {.recall = 0.0, .false_merge = 0.0}, 1};
  inference_map out;
  out.decide({0, *net::ipv4_addr::parse("193.0.0.10")}, peering_class::local,
             method_step::rtt_colo);
  const auto st = run_step4_multi_ixp(f.view, f.paths, resolve, kScope, out);
  EXPECT_EQ(st.decided, 0u);
  EXPECT_EQ(out.cls({1, *net::ipv4_addr::parse("193.0.1.10")}), peering_class::unknown);
}

TEST(Step4, HybridRouterClassification) {
  // Anchors local at IXP0 and remote at IXP1 -> hybrid router (Fig. 3c).
  multi_ixp_fixture f;
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  out.decide({0, *net::ipv4_addr::parse("193.0.0.10")}, peering_class::local,
             method_step::rtt_colo);
  out.decide({1, *net::ipv4_addr::parse("193.0.1.10")}, peering_class::remote,
             method_step::port_capacity);
  const auto st = run_step4_multi_ixp(f.view, f.paths, resolve, kScope, out);
  bool found_hybrid = false;
  for (const auto& r : st.routers)
    if (r.kind == router_kind::hybrid) found_hybrid = true;
  EXPECT_TRUE(found_hybrid);
}

// ---------------------------------------------------------------------------
// Step 5: facility vote via private neighbours.

struct step5_fixture {
  world::world w;
  traix::extraction paths;
  std::vector<measure::vantage_point> vps{ams_vp()};
  step2_result rtts;  // empty: all IXP facilities considered feasible

  step5_fixture() {
    // The member AS with one router carrying the LAN interface and a
    // private interface.
    world::autonomous_system as;
    as.id = 0;
    as.asn = kMember;
    as.backbone = *net::prefix::parse("10.0.0.0/20");
    w.ases.push_back(as);
    world::router rt;
    rt.id = 0;
    rt.owner = 0;
    rt.city = 0;
    rt.interfaces = {*net::ipv4_addr::parse("10.0.0.1"),
                     *net::ipv4_addr::parse("193.0.0.10")};
    w.routers.push_back(rt);
    world::city c;
    c.id = 0;
    c.name = "Amsterdam";
    c.location = city("Amsterdam");
    w.cities.push_back(c);
    w.finalize();
    // Private adjacencies from the member's private interface to the two
    // neighbours.
    paths.private_links.push_back({*net::ipv4_addr::parse("10.0.0.1"),
                                   *net::ipv4_addr::parse("10.1.0.1"), kMember,
                                   kNeighbor1});
    paths.private_links.push_back({*net::ipv4_addr::parse("10.0.0.1"),
                                   *net::ipv4_addr::parse("10.2.0.1"), kMember,
                                   kNeighbor2});
  }
};

TEST(Step5, NeighborsAtIxpFacilityVoteLocal) {
  step5_fixture f;
  // Neighbours are both at the AMS IXP facility; member colocation data
  // removed so steps 1-3 could not decide.
  const auto view = make_view(1.0, 1.0, {kFacPar}, {kFacAms}, {kFacAms});
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  const world::ixp_id scope[] = {0};
  const auto st = run_step5_private(view, f.paths, resolve, f.vps, f.rtts, scope,
                                    {}, out);
  EXPECT_EQ(st.decided_local, 1u);
  EXPECT_EQ(out.cls(member_key()), peering_class::local);
  EXPECT_EQ(out.find(member_key())->step, method_step::private_links);
}

TEST(Step5, NeighborsElsewhereVoteRemote) {
  step5_fixture f;
  // Neighbours cluster at a non-IXP facility: zero overlap -> remote.
  const auto view = make_view(1.0, 1.0, {kFacPar}, {kFacPar}, {kFacPar});
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  const world::ixp_id scope[] = {0};
  const auto st = run_step5_private(view, f.paths, resolve, f.vps, f.rtts, scope,
                                    {}, out);
  EXPECT_EQ(st.decided_remote, 1u);
  EXPECT_EQ(out.cls(member_key()), peering_class::remote);
}

TEST(Step5, NoPrivateNeighborsNoInference) {
  step5_fixture f;
  f.paths.private_links.clear();
  const auto view = make_view(1.0, 1.0, {kFacPar});
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  const world::ixp_id scope[] = {0};
  const auto st = run_step5_private(view, f.paths, resolve, f.vps, f.rtts, scope,
                                    {}, out);
  EXPECT_EQ(st.decided_local + st.decided_remote, 0u);
  EXPECT_GE(st.no_inference, 1u);
  EXPECT_EQ(out.cls(member_key()), peering_class::unknown);
}

TEST(Step5, SkipsAlreadyDecidedInterfaces) {
  step5_fixture f;
  const auto view = make_view(1.0, 1.0, {kFacPar}, {kFacAms}, {kFacAms});
  const alias::resolver resolve{f.w, {.recall = 1.0, .false_merge = 0.0}, 1};
  inference_map out;
  out.decide(member_key(), peering_class::remote, method_step::port_capacity);
  const world::ixp_id scope[] = {0};
  run_step5_private(view, f.paths, resolve, f.vps, f.rtts, scope, {}, out);
  EXPECT_EQ(out.find(member_key())->step, method_step::port_capacity);
}

// ---------------------------------------------------------------------------
// Baseline.

TEST(Baseline, ThresholdClassification) {
  step2_result rtts;
  rtts.observations[{0, net::ipv4_addr{1}}] = {obs(3.0)};
  rtts.observations[{0, net::ipv4_addr{2}}] = {obs(25.0)};
  inference_map out;
  const auto n = run_rtt_baseline(rtts, {.threshold_ms = 10.0}, out);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out.cls({0, net::ipv4_addr{1}}), peering_class::local);
  EXPECT_EQ(out.cls({0, net::ipv4_addr{2}}), peering_class::remote);
}

TEST(Baseline, UsesMinimumAcrossVps) {
  step2_result rtts;
  rtts.observations[{0, net::ipv4_addr{1}}] = {obs(30.0), obs(5.0)};
  inference_map out;
  run_rtt_baseline(rtts, {.threshold_ms = 10.0}, out);
  EXPECT_EQ(out.cls({0, net::ipv4_addr{1}}), peering_class::local);
}

TEST(Baseline, NearbyRemoteIsTheFalseNegativeMode) {
  // The §4.1 insight: a remote peer 50 km away yields ~1 ms and the
  // threshold calls it local — exactly the failure Step 3 fixes.
  step2_result rtts;
  rtts.observations[member_key()] = {obs(0.9)};
  inference_map base_out;
  run_rtt_baseline(rtts, {}, base_out);
  EXPECT_EQ(base_out.cls(member_key()), peering_class::local);

  const auto view = make_view(1.0, 1.0, {kFacAmsOther});  // truly remote nearby
  const std::vector<measure::vantage_point> vps{ams_vp()};
  inference_map colo_out;
  run_step3_colo(view, vps, rtts, {}, colo_out);
  EXPECT_EQ(colo_out.cls(member_key()), peering_class::remote);
}

}  // namespace
