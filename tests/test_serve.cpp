// The serve subsystem: epoch-versioned catalog ingest, the fluent query
// API (filters, group-by, ECDF, deterministic sort/pagination), and
// cross-epoch diff queries.  Pins
//   - catalog counts == pipeline_result::count/contribution for every
//     (IXP, class, step);
//   - portal JSON via the catalog byte-identical to the pre-redesign
//     exporter (reference implementation reproduced below);
//   - diff-query join accounting == eval::run_longitudinal_study.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "opwat/eval/longitudinal.hpp"
#include "opwat/eval/portal.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/util/json.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using infer::peering_class;

constexpr peering_class k_classes[] = {peering_class::unknown, peering_class::local,
                                       peering_class::remote};
constexpr method_step k_steps[] = {method_step::none,          method_step::port_capacity,
                                   method_step::rtt_colo,      method_step::multi_ixp,
                                   method_step::private_links, method_step::rtt_threshold,
                                   method_step::traceroute_rtt};

/// The pre-redesign portal exporter, verbatim: the byte-identity oracle
/// for the catalog-backed renderer.
std::string reference_portal_json(const eval::scenario& s,
                                  const infer::pipeline_result& pr,
                                  const eval::portal_options& opt) {
  util::json_writer w;
  w.begin_object();
  w.key("snapshot").value(opt.snapshot_label);
  w.key("generator").value("opwat");
  w.key("ixps_studied").value(pr.scope.size());

  const std::size_t local = pr.inferences.count(peering_class::local);
  const std::size_t remote = pr.inferences.count(peering_class::remote);
  std::size_t iface_total = 0;
  for (const auto x : pr.scope) iface_total += s.view.interfaces_of_ixp(x).size();
  const std::size_t unknown = iface_total - std::min(iface_total, local + remote);
  w.key("totals").begin_object();
  w.key("local").value(local);
  w.key("remote").value(remote);
  w.key("unknown").value(unknown);
  w.end_object();

  w.key("ixps").begin_array();
  for (const auto x : pr.scope) {
    const auto& ixp = s.w.ixps[x];
    w.begin_object();
    w.key("name").value(ixp.name);
    w.key("peering_lan").value(ixp.peering_lan.to_string());
    w.key("min_physical_capacity_gbps").value(ixp.min_physical_capacity_gbps);
    w.key("local").value(pr.count(x, peering_class::local));
    w.key("remote").value(pr.count(x, peering_class::remote));

    if (opt.include_facilities) {
      w.key("facilities").begin_array();
      for (const auto f : s.view.facilities_of_ixp(x)) {
        w.begin_object();
        w.key("id").value(static_cast<std::uint64_t>(f));
        if (f < s.w.facilities.size()) w.key("name").value(s.w.facilities[f].name);
        if (const auto loc = s.view.facility_location(f)) {
          w.key("lat").value(loc->lat_deg);
          w.key("lon").value(loc->lon_deg);
        }
        w.end_object();
      }
      w.end_array();
    }

    if (opt.include_interfaces) {
      w.key("members").begin_array();
      for (const auto& e : s.view.interfaces_of_ixp(x)) {
        const infer::iface_key key{x, e.ip};
        const auto* inf = pr.inferences.find(key);
        w.begin_object();
        w.key("interface").value(e.ip.to_string());
        w.key("asn").value(static_cast<std::uint64_t>(e.asn.value));
        w.key("class").value(
            std::string{to_string(inf ? inf->cls : peering_class::unknown)});
        if (inf && inf->cls != peering_class::unknown)
          w.key("evidence").value(std::string{to_string(inf->step)});
        const double rtt = pr.inferences.rtt_min_ms(key);
        if (!std::isnan(rtt)) w.key("rtt_min_ms").value(rtt);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(55))};
    pr_ = new infer::pipeline_result{s_->run_inference()};
    cat_ = new serve::catalog;
    cat_->ingest(s_->w, s_->view, *pr_, "2018-04");
    // A second epoch from a perturbed run, for diff queries.
    auto cfg = s_->cfg.pipeline;
    cfg.seed += 1;
    pr2_ = new infer::pipeline_result{s_->run_inference(cfg)};
    cat_->ingest(s_->w, s_->view, *pr2_, "2018-05");
  }
  static void TearDownTestSuite() {
    delete cat_;
    delete pr2_;
    delete pr_;
    delete s_;
    cat_ = nullptr;
    pr2_ = nullptr;
    pr_ = nullptr;
    s_ = nullptr;
  }

  static serve::query q() { return serve::query{*cat_}; }

  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
  static infer::pipeline_result* pr2_;
  static serve::catalog* cat_;
};

eval::scenario* ServeTest::s_ = nullptr;
infer::pipeline_result* ServeTest::pr_ = nullptr;
infer::pipeline_result* ServeTest::pr2_ = nullptr;
serve::catalog* ServeTest::cat_ = nullptr;

// ---------------------------------------------------------------------------
// Catalog ingest.

TEST_F(ServeTest, EpochBookkeeping) {
  EXPECT_EQ(cat_->epoch_count(), 2u);
  EXPECT_EQ(cat_->labels(), (std::vector<std::string>{"2018-04", "2018-05"}));
  EXPECT_TRUE(cat_->find("2018-04").has_value());
  EXPECT_FALSE(cat_->find("2018-06").has_value());
  EXPECT_THROW((void)cat_->of("2018-06"), std::invalid_argument);
  EXPECT_THROW(cat_->ingest(s_->w, s_->view, *pr_, "2018-04"), std::invalid_argument);
}

TEST_F(ServeTest, RowsCoverEveryScopedInterface) {
  const auto& ep = cat_->of("2018-04");
  std::size_t iface_total = 0;
  for (const auto x : pr_->scope) iface_total += s_->view.interfaces_of_ixp(x).size();
  EXPECT_EQ(ep.rows(), iface_total);
  EXPECT_EQ(ep.blocks().size(), pr_->scope.size());
  // Blocks preserve scope order and tile the rows.
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < ep.blocks().size(); ++i) {
    const auto& b = ep.blocks()[i];
    EXPECT_EQ(cat_->ixps()[b.ixp].id, pr_->scope[i]);
    EXPECT_EQ(b.begin, cursor);
    cursor = b.end;
  }
  EXPECT_EQ(cursor, ep.rows());
}

TEST_F(ServeTest, CountsMatchPipelineForEveryIxpClassAndStep) {
  const auto& ep = cat_->of("2018-04");
  EXPECT_EQ(ep.total(peering_class::local), pr_->inferences.count(peering_class::local));
  EXPECT_EQ(ep.total(peering_class::remote),
            pr_->inferences.count(peering_class::remote));
  for (const auto x : pr_->scope) {
    const auto ref = cat_->ixp_by_id(x);
    ASSERT_TRUE(ref.has_value());
    for (const auto c : {peering_class::local, peering_class::remote})
      EXPECT_EQ(ep.count(*ref, c), pr_->count(x, c)) << "ixp " << x;
    EXPECT_EQ(ep.count(*ref, peering_class::unknown),
              s_->view.interfaces_of_ixp(x).size() -
                  pr_->count(x, peering_class::local) -
                  pr_->count(x, peering_class::remote));
    for (const auto st : k_steps)
      EXPECT_EQ(ep.contribution(*ref, st), pr_->contribution(x, st))
          << "ixp " << x << " step " << to_string(st);
  }
}

TEST_F(ServeTest, RowMaterializationRoundTrips) {
  const auto& ep = cat_->of("2018-04");
  std::size_t i = 0;
  for (const auto x : pr_->scope) {
    for (const auto& e : s_->view.interfaces_of_ixp(x)) {
      const auto row = ep.row(i++);
      EXPECT_EQ(row.ip, e.ip);
      EXPECT_EQ(row.ixp, x);
      EXPECT_EQ(row.asn.value, e.asn.value);
      const infer::iface_key key{x, e.ip};
      EXPECT_EQ(row.cls, pr_->inferences.cls(key));
      const double rtt = pr_->inferences.rtt_min_ms(key);
      if (std::isnan(rtt))
        EXPECT_TRUE(std::isnan(row.rtt_min_ms));
      else
        EXPECT_DOUBLE_EQ(row.rtt_min_ms, rtt);
      EXPECT_EQ(row.feasible_facilities, pr_->inferences.feasible_facilities(key));
      const auto port = s_->view.port_capacity(e.asn, x);
      if (port)
        EXPECT_DOUBLE_EQ(row.port_gbps, *port);
      else
        EXPECT_TRUE(std::isnan(row.port_gbps));
    }
  }
  EXPECT_EQ(i, ep.rows());
}

// ---------------------------------------------------------------------------
// Portal round-trip.

TEST_F(ServeTest, PortalJsonByteIdenticalToPreRedesignExporter) {
  for (const bool full : {true, false}) {
    eval::portal_options opt;
    opt.snapshot_label = "2018-04";
    opt.include_interfaces = full;
    opt.include_facilities = full;
    const auto expected = reference_portal_json(*s_, *pr_, opt);
    EXPECT_EQ(eval::portal_snapshot_json(*cat_, "2018-04", opt), expected);
    // The scenario+pipeline convenience overload goes through a
    // temporary catalog and must match too.
    EXPECT_EQ(eval::portal_snapshot_json(*s_, *pr_, opt), expected);
  }
}

// ---------------------------------------------------------------------------
// Query API: filters.

TEST_F(ServeTest, CountFastPathsAgreeWithScan) {
  const auto& ep = cat_->of("2018-04");
  EXPECT_EQ(q().epoch("2018-04").count(), ep.rows());
  EXPECT_EQ(q().epoch("2018-04").cls(peering_class::remote).count(),
            ep.total(peering_class::remote));
  for (const auto x : pr_->scope) {
    EXPECT_EQ(q().epoch("2018-04").at_ixp(x).count(),
              s_->view.interfaces_of_ixp(x).size());
    for (const auto c : k_classes)
      EXPECT_EQ(q().epoch("2018-04").at_ixp(x).cls(c).count(),
                q().epoch("2018-04").at_ixp(x).cls(c).rows().size());
    for (const auto st : k_steps)
      EXPECT_EQ(q().epoch("2018-04").at_ixp(x).step(st).count(), pr_->contribution(x, st));
  }
  // Epoch-wide step count == sum over IXPs.
  std::size_t colo = 0;
  for (const auto x : pr_->scope) colo += pr_->contribution(x, method_step::rtt_colo);
  EXPECT_EQ(q().epoch("2018-04").step(method_step::rtt_colo).count(), colo);
}

TEST_F(ServeTest, DefaultEpochIsLatest) {
  EXPECT_EQ(q().count(), cat_->of("2018-05").rows());
}

TEST_F(ServeTest, VectorizedEngineMatchesReferenceOnPortalShapes) {
  // The canned portal shapes on both engines (tests/test_exec.cpp has
  // the randomized property suite; this is the smoke-level pin close to
  // the query API tests).
  const auto rows_eq = [](const std::vector<serve::iface_row>& a,
                          const std::vector<serve::iface_row>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ip, b[i].ip);
      EXPECT_EQ(a[i].cls, b[i].cls);
    }
  };
  const auto vec = [] { return q().engine(serve::exec::mode::vectorized); };
  const auto ref = [] { return q().engine(serve::exec::mode::reference); };
  EXPECT_EQ(vec().epoch("2018-04").cls(peering_class::remote).count(),
            ref().epoch("2018-04").cls(peering_class::remote).count());
  rows_eq(vec().epoch("2018-04").cls(peering_class::remote).sort_by_rtt().page(0, 10)
              .rows(),
          ref().epoch("2018-04").cls(peering_class::remote).sort_by_rtt().page(0, 10)
              .rows());
  const auto gv =
      vec().epoch("2018-04").cls(peering_class::remote).by_step().group_counts();
  const auto gr =
      ref().epoch("2018-04").cls(peering_class::remote).by_step().group_counts();
  ASSERT_EQ(gv.size(), gr.size());
  for (std::size_t i = 0; i < gv.size(); ++i) {
    EXPECT_EQ(gv[i].key, gr[i].key);
    EXPECT_EQ(gv[i].count, gr[i].count);
  }
}

TEST_F(ServeTest, MemberFilterMatchesBruteForce) {
  const auto& ep = cat_->of("2018-04");
  // Pick the ASN of the first row.
  const auto asn = net::asn{ep.asn_col().front()};
  std::size_t expected = 0;
  for (std::size_t i = 0; i < ep.rows(); ++i)
    if (ep.asn_col()[i] == asn.value) ++expected;
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(q().epoch("2018-04").member(asn).count(), expected);
  for (const auto& row : q().epoch("2018-04").member(asn).rows())
    EXPECT_EQ(row.asn.value, asn.value);
}

TEST_F(ServeTest, MetroFilterMatchesBruteForce) {
  const auto& ep = cat_->of("2018-04");
  // Pick the metro of the first mapped row.
  serve::metro_ref target = serve::k_no_metro;
  for (std::size_t i = 0; i < ep.rows(); ++i)
    if (ep.metro_col()[i] != serve::k_no_metro) {
      target = ep.metro_col()[i];
      break;
    }
  ASSERT_NE(target, serve::k_no_metro);
  const auto name = std::string{cat_->metro_name(target)};
  std::size_t expected = 0;
  for (std::size_t i = 0; i < ep.rows(); ++i)
    if (ep.metro_col()[i] == target) ++expected;
  EXPECT_EQ(q().epoch("2018-04").metro(name).count(), expected);
  EXPECT_THROW(q().metro("no-such-metro"), std::invalid_argument);
}

TEST_F(ServeTest, RttRangeFilterMatchesBruteForce) {
  const auto& ep = cat_->of("2018-04");
  const double lo = 1.0, hi = 10.0;
  std::size_t expected = 0;
  for (std::size_t i = 0; i < ep.rows(); ++i) {
    const double r = ep.rtt_col()[i];
    if (!std::isnan(r) && r >= lo && r <= hi) ++expected;
  }
  EXPECT_EQ(q().epoch("2018-04").rtt_between(lo, hi).count(), expected);
  for (const auto& row : q().epoch("2018-04").rtt_between(lo, hi).rows()) {
    EXPECT_GE(row.rtt_min_ms, lo);
    EXPECT_LE(row.rtt_min_ms, hi);
  }
}

TEST_F(ServeTest, UnknownFiltersThrow) {
  EXPECT_THROW(q().at_ixp("no-such-ixp"), std::invalid_argument);
  EXPECT_THROW(q().at_ixp(world::ixp_id{999999}), std::invalid_argument);
  EXPECT_THROW((void)q().epoch("no-such-epoch").count(), std::invalid_argument);
  EXPECT_THROW((void)serve::query{serve::catalog{}}.count(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Query API: aggregation, sort, pagination.

TEST_F(ServeTest, GroupCountsAreDeterministicAndComplete) {
  const auto groups =
      q().epoch("2018-04").cls(peering_class::remote).by_step().group_counts();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    sum += groups[i].count;
    if (i > 0) {
      // (count desc, key asc) ordering.
      EXPECT_TRUE(groups[i - 1].count > groups[i].count ||
                  (groups[i - 1].count == groups[i].count &&
                   groups[i - 1].key < groups[i].key));
    }
  }
  EXPECT_EQ(sum, cat_->of("2018-04").total(peering_class::remote));
  // top(k) is a prefix of the full ordering.
  const auto top2 =
      q().epoch("2018-04").cls(peering_class::remote).by_step().top(2).group_counts();
  ASSERT_LE(top2.size(), 2u);
  for (std::size_t i = 0; i < top2.size(); ++i) {
    EXPECT_EQ(top2[i].key, groups[i].key);
    EXPECT_EQ(top2[i].count, groups[i].count);
  }
  // Group-by is required for group_counts().
  EXPECT_THROW((void)q().epoch("2018-04").group_counts(), std::logic_error);
}

TEST_F(ServeTest, GroupByIxpMatchesBlockTotals) {
  const auto groups = q().epoch("2018-04").by_ixp().group_counts();
  const auto& ep = cat_->of("2018-04");
  ASSERT_EQ(groups.size(), ep.blocks().size());
  std::size_t sum = 0;
  for (const auto& g : groups) sum += g.count;
  EXPECT_EQ(sum, ep.rows());
}

TEST_F(ServeTest, PagesTileTheCanonicalOrder) {
  const auto all = q().epoch("2018-04").rows();
  ASSERT_GT(all.size(), 10u);
  // Canonical order == epoch row order.
  const auto& ep = cat_->of("2018-04");
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].ip.value(), ep.ip_col()[i]);
    EXPECT_EQ(all[i].ixp, ep.world_ixp(ep.ixp_col()[i]));
  }
  // Adjacent pages reassemble the full result.
  const std::size_t half = all.size() / 2;
  auto paged = q().epoch("2018-04").page(0, half).rows();
  const auto rest = q().epoch("2018-04").page(half, all.size()).rows();
  paged.insert(paged.end(), rest.begin(), rest.end());
  ASSERT_EQ(paged.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(paged[i].ip, all[i].ip);
    EXPECT_EQ(paged[i].ixp, all[i].ixp);
  }
  // top(k) == page(0, k).
  const auto top = q().epoch("2018-04").top(7).rows();
  ASSERT_EQ(top.size(), 7u);
  for (std::size_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i].ip, all[i].ip);
  // Out-of-range offsets are empty, not UB.
  EXPECT_TRUE(q().epoch("2018-04").page(all.size() + 5, 10).rows().empty());
}

TEST_F(ServeTest, SortByRttIsDeterministic) {
  const auto rows = q().epoch("2018-04").sort_by_rtt().rows();
  bool seen_nan = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (std::isnan(rows[i].rtt_min_ms)) {
      seen_nan = true;
      continue;
    }
    EXPECT_FALSE(seen_nan) << "measured row after unmeasured rows";
    if (i > 0 && !std::isnan(rows[i - 1].rtt_min_ms))
      EXPECT_LE(rows[i - 1].rtt_min_ms, rows[i].rtt_min_ms);
  }
  // Descending mirrors ascending on the measured prefix.
  const auto desc = q().epoch("2018-04").sort_by_rtt(false).rows();
  for (std::size_t i = 1; i < desc.size(); ++i)
    if (!std::isnan(desc[i - 1].rtt_min_ms) && !std::isnan(desc[i].rtt_min_ms))
      EXPECT_GE(desc[i - 1].rtt_min_ms, desc[i].rtt_min_ms);
  // Repeat runs are identical (stable tie-break on canonical order).
  const auto again = q().epoch("2018-04").sort_by_rtt().rows();
  ASSERT_EQ(again.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(again[i].ip, rows[i].ip);
}

TEST_F(ServeTest, RttEcdfIsMonotoneAndComplete) {
  std::size_t measured = 0;
  const auto& ep = cat_->of("2018-04");
  for (std::size_t i = 0; i < ep.rows(); ++i)
    if (!std::isnan(ep.rtt_col()[i])) ++measured;
  const auto ecdf = q().epoch("2018-04").rtt_ecdf(8);
  ASSERT_FALSE(ecdf.empty());
  EXPECT_EQ(ecdf.size(), 8u);
  for (std::size_t i = 1; i < ecdf.size(); ++i) {
    EXPECT_LE(ecdf[i - 1].upper_ms, ecdf[i].upper_ms);
    EXPECT_LE(ecdf[i - 1].cum_count, ecdf[i].cum_count);
  }
  EXPECT_EQ(ecdf.back().cum_count, measured);
  EXPECT_DOUBLE_EQ(ecdf.back().fraction, 1.0);
  EXPECT_THROW((void)q().epoch("2018-04").rtt_ecdf(0), std::invalid_argument);
  // A selection with no measured rows yields an empty ECDF.
  EXPECT_TRUE(q().epoch("2018-04").rtt_between(-2.0, -1.0).rtt_ecdf().empty());
}

// ---------------------------------------------------------------------------
// Cross-epoch diffs.

TEST_F(ServeTest, DiffMatchesBruteForce) {
  const auto d = serve::diff_epochs(*cat_, "2018-04", "2018-05");
  EXPECT_EQ(d.from, "2018-04");
  EXPECT_EQ(d.to, "2018-05");

  const auto key_map = [](const serve::epoch& ep) {
    std::map<infer::iface_key, peering_class> m;
    for (std::size_t i = 0; i < ep.rows(); ++i)
      m.emplace(ep.row(i).key(), static_cast<peering_class>(ep.cls_col()[i]));
    return m;
  };
  const auto a = key_map(cat_->of("2018-04"));
  const auto b = key_map(cat_->of("2018-05"));

  std::size_t appeared = 0, disappeared = 0, reclassified = 0;
  for (const auto& [k, c] : b)
    if (!a.contains(k))
      ++appeared;
    else if (a.at(k) != c)
      ++reclassified;
  for (const auto& [k, c] : a)
    if (!b.contains(k)) ++disappeared;
  EXPECT_EQ(d.appeared.size(), appeared);
  EXPECT_EQ(d.disappeared.size(), disappeared);
  EXPECT_EQ(d.reclassified.size(), reclassified);
  // Same scenario + same scope => same member rows, only classes move.
  EXPECT_EQ(appeared, 0u);
  EXPECT_EQ(disappeared, 0u);
  for (const auto& r : d.reclassified) {
    EXPECT_EQ(r.before.key(), r.after.key());
    EXPECT_NE(r.before.cls, r.after.cls);
  }
  EXPECT_THROW((void)serve::diff_epochs(*cat_, "2018-04", "nope"),
               std::invalid_argument);
}

TEST(ServeLongitudinal, DiffJoinAccountingMatchesStudy) {
  auto cfg = eval::small_scenario_config(83);
  cfg.world.months = 6;
  const auto s = eval::scenario::build(cfg);
  const auto study = eval::run_longitudinal_study(s, {.months = 6, .top_n_ixps = 3});

  // The study's catalog holds one epoch per month; recompute the join
  // totals from diff queries and from first principles.
  ASSERT_EQ(study.epochs.epoch_count(), 7u);
  std::size_t local_joins = 0, remote_joins = 0;
  std::size_t brute_local = 0, brute_remote = 0;
  for (int m = 1; m <= 6; ++m) {
    const auto d = serve::diff_epochs(study.epochs, eval::longitudinal_epoch_label(m - 1),
                                      eval::longitudinal_epoch_label(m));
    local_joins += d.appeared_of(peering_class::local);
    remote_joins += d.appeared_of(peering_class::remote);

    const auto& prev = study.epochs.of(eval::longitudinal_epoch_label(m - 1));
    std::set<infer::iface_key> prev_keys;
    for (std::size_t i = 0; i < prev.rows(); ++i) prev_keys.insert(prev.row(i).key());
    const auto& cur = study.epochs.of(eval::longitudinal_epoch_label(m));
    for (std::size_t i = 0; i < cur.rows(); ++i) {
      const auto row = cur.row(i);
      if (prev_keys.contains(row.key())) continue;
      if (row.cls == peering_class::local) ++brute_local;
      if (row.cls == peering_class::remote) ++brute_remote;
    }
  }
  EXPECT_EQ(study.inferred_local_joins, local_joins);
  EXPECT_EQ(study.inferred_remote_joins, remote_joins);
  EXPECT_EQ(study.inferred_local_joins, brute_local);
  EXPECT_EQ(study.inferred_remote_joins, brute_remote);

  // Monthly totals come straight from the epochs.
  for (const auto& mi : study.months) {
    const auto& ep = study.epochs.of(eval::longitudinal_epoch_label(mi.month));
    EXPECT_EQ(mi.inferred_local, ep.total(peering_class::local));
    EXPECT_EQ(mi.inferred_remote, ep.total(peering_class::remote));
    EXPECT_EQ(mi.unknown, ep.total(peering_class::unknown));
  }
}

}  // namespace
