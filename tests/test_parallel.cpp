// The parallel sharded executor: bit-identical results across executors,
// thread counts and scope orders; exact shard merging of the inference
// map and the campaign; per-shard rng streams; and a many-small-IXP
// stress run (the TSan gate for the executor's memory-order story).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/infer/engine.hpp"
#include "opwat/infer/executor.hpp"
#include "opwat/traix/crossing.hpp"

namespace {

using namespace opwat;
using namespace opwat::infer;

// ---------------------------------------------------------------------------
// Bitwise comparison of the deterministic parts of a pipeline_result
// (everything except wall-clock timings).

void expect_bit_identical(const pipeline_result& a, const pipeline_result& b,
                          bool compare_scope = true, bool compare_trace = true) {
  if (compare_scope) EXPECT_EQ(a.scope, b.scope);

  // Classifications: every field of every entry.
  ASSERT_EQ(a.inferences.items().size(), b.inferences.items().size());
  auto ita = a.inferences.items().begin();
  auto itb = b.inferences.items().begin();
  for (; ita != a.inferences.items().end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.cls, itb->second.cls);
    EXPECT_EQ(ita->second.step, itb->second.step);
    EXPECT_EQ(ita->second.feasible_ixp_facilities, itb->second.feasible_ixp_facilities);
    if (std::isnan(ita->second.rtt_min_ms))
      EXPECT_TRUE(std::isnan(itb->second.rtt_min_ms));
    else
      EXPECT_EQ(ita->second.rtt_min_ms, itb->second.rtt_min_ms);  // exact bits
  }

  // O(1) per-class counters.
  for (const auto c :
       {peering_class::unknown, peering_class::local, peering_class::remote})
    EXPECT_EQ(a.inferences.count(c), b.inferences.count(c));

  // Campaign product, including raw measurement ordering.
  EXPECT_EQ(a.rtt.usable_vps, b.rtt.usable_vps);
  EXPECT_EQ(a.rtt.mgmt_filtered_vps, b.rtt.mgmt_filtered_vps);
  EXPECT_EQ(a.rtt.targets_queried, b.rtt.targets_queried);
  EXPECT_EQ(a.rtt.targets_responsive, b.rtt.targets_responsive);
  ASSERT_EQ(a.rtt.campaign.measurements.size(), b.rtt.campaign.measurements.size());
  for (std::size_t i = 0; i < a.rtt.campaign.measurements.size(); ++i) {
    const auto& ma = a.rtt.campaign.measurements[i];
    const auto& mb = b.rtt.campaign.measurements[i];
    EXPECT_EQ(ma.vp_index, mb.vp_index);
    EXPECT_EQ(ma.target, mb.target);
    EXPECT_EQ(ma.responsive, mb.responsive);
    EXPECT_EQ(ma.samples_kept, mb.samples_kept);
    if (ma.responsive) EXPECT_EQ(ma.rtt_min_ms, mb.rtt_min_ms);
  }
  ASSERT_EQ(a.rtt.observations.size(), b.rtt.observations.size());

  // Path extraction, in corpus order.
  ASSERT_EQ(a.paths.crossings.size(), b.paths.crossings.size());
  for (std::size_t i = 0; i < a.paths.crossings.size(); ++i) {
    EXPECT_EQ(a.paths.crossings[i].ixp, b.paths.crossings[i].ixp);
    EXPECT_EQ(a.paths.crossings[i].ixp_ip, b.paths.crossings[i].ixp_ip);
  }
  EXPECT_EQ(a.paths.adjacencies.size(), b.paths.adjacencies.size());
  EXPECT_EQ(a.paths.private_links.size(), b.paths.private_links.size());

  // Per-step stats blocks.
  EXPECT_EQ(a.s1.examined, b.s1.examined);
  EXPECT_EQ(a.s1.inferred_remote, b.s1.inferred_remote);
  EXPECT_EQ(a.s3.decided_local, b.s3.decided_local);
  EXPECT_EQ(a.s3.decided_remote, b.s3.decided_remote);
  EXPECT_EQ(a.s3.left_unknown, b.s3.left_unknown);
  EXPECT_EQ(a.s4.decided, b.s4.decided);
  EXPECT_EQ(a.s5.decided_local, b.s5.decided_local);
  EXPECT_EQ(a.s5.decided_remote, b.s5.decided_remote);

  // The ledger's deterministic fields (elapsed_ms is wall-clock).
  if (compare_trace) {
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].step, b.trace[i].step);
      EXPECT_EQ(a.trace[i].invocations, b.trace[i].invocations);
      EXPECT_EQ(a.trace[i].decided_local, b.trace[i].decided_local);
      EXPECT_EQ(a.trace[i].decided_remote, b.trace[i].decided_remote);
    }
  }
}

class ParallelExecutor : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(7))};
  }
  static void TearDownTestSuite() {
    delete s_;
    s_ = nullptr;
  }
  static eval::scenario* s_;
};

eval::scenario* ParallelExecutor::s_ = nullptr;

// ---------------------------------------------------------------------------
// Determinism suite.

TEST_F(ParallelExecutor, BitIdenticalAcrossThreadCounts) {
  const auto serial = s_->run_inference();
  const auto p1 = s_->run_inference_parallel(1);
  const auto p2 = s_->run_inference_parallel(2);
  const auto p8 = s_->run_inference_parallel(8);
  // Parallel runs are bit-identical to each other, ledger included...
  expect_bit_identical(p1, p2);
  expect_bit_identical(p1, p8);
  // ...and to the serial run in everything except invocation counts
  // (serial runs per-IXP steps as one batch, parallel as one shard per
  // IXP — the partition, not the thread count, sets `invocations`).
  expect_bit_identical(serial, p8, true, false);
  const auto* campaign = p8.trace_for("ping-campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->invocations, s_->scope.size());
}

TEST_F(ParallelExecutor, ThreadCountBeyondShardsIsFine) {
  // More workers than shards (and than hardware) must change nothing.
  const auto few = s_->run_inference_parallel(2);
  const auto many = s_->run_inference_parallel(64);
  expect_bit_identical(few, many);
}

TEST_F(ParallelExecutor, ShuffledScopeSameClassifications) {
  // Shard creation order follows the scope; shuffling it must not change
  // any classification, annotation or counter (the result map is keyed,
  // merges are exact, and per-shard streams are keyed by IXP id).
  const auto baseline = s_->run_inference_parallel(4);

  auto shuffled = s_->scope;
  util::rng r{123};
  r.shuffle(shuffled);
  ASSERT_NE(shuffled, s_->scope);

  auto in = s_->inputs();
  in.scope = shuffled;
  const auto cfg = [&] {
    auto c = s_->cfg.pipeline;
    c.execution = parallelism::parallel;
    c.threads = 4;
    return c;
  }();
  const auto pr = pipeline_builder::from_config(cfg).build().run(in);
  // Scope and ledger order differ by construction; the decided world
  // must not.
  expect_bit_identical(baseline, pr, false, false);
}

TEST_F(ParallelExecutor, BatchSizeShardsMatchPerIxpShards) {
  auto cfg = s_->cfg.pipeline;
  cfg.execution = parallelism::parallel;
  cfg.threads = 3;
  cfg.batch_size = 3;  // 3 IXPs per shard instead of 1
  const auto chunked = s_->run_inference(cfg);
  expect_bit_identical(s_->run_inference_parallel(3), chunked, true, false);
  const auto* tr = chunked.trace_for("port-capacity");
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(tr->invocations, (s_->scope.size() + 2) / 3);
}

TEST_F(ParallelExecutor, TracerouteRttExtensionUnderParallel) {
  auto cfg = s_->cfg.pipeline;
  cfg.use_traceroute_rtt = true;
  cfg.traceroute_rtt.require_local_near = false;
  const auto serial = s_->run_inference(cfg);
  cfg.execution = parallelism::parallel;
  cfg.threads = 4;
  const auto parallel = s_->run_inference(cfg);
  expect_bit_identical(serial, parallel, true, false);
  EXPECT_EQ(serial.s2b.decided_local + serial.s2b.decided_remote,
            parallel.s2b.decided_local + parallel.s2b.decided_remote);
}

TEST_F(ParallelExecutor, FluentThreadsKnob) {
  const auto pr = engine()
                      .with_step("port-capacity")
                      .with_step("rtt-colo")
                      .seed(s_->cfg.pipeline.seed)
                      .threads(2)
                      .build()
                      .run(s_->inputs());
  const auto serial = engine()
                          .with_step("port-capacity")
                          .with_step("rtt-colo")
                          .seed(s_->cfg.pipeline.seed)
                          .build()
                          .run(s_->inputs());
  expect_bit_identical(serial, pr, true, false);
}

// ---------------------------------------------------------------------------
// Per-shard context contract.

TEST_F(ParallelExecutor, ShardContextsNeverShareMutableState) {
  // A custom per-IXP step that records which result object and which
  // batches it saw: under the parallel executor every invocation must
  // get a shard-local result (never the run-level one) and exactly the
  // IXPs of its shard.
  struct probe_step final : inference_step {
    std::string_view name() const noexcept override { return "probe"; }
    void run(step_context& ctx) override {
      const std::lock_guard lock{m};
      sinks.insert(&ctx.result);
      shared_seen.insert(&ctx.shared());
      for (const auto x : ctx.batch) ixps_seen.push_back(x);
      EXPECT_NE(&ctx.result, &ctx.shared());
      EXPECT_EQ(ctx.pool(), nullptr);  // shards must not nest fan-out
    }
    std::mutex m;
    std::set<const pipeline_result*> sinks;
    std::set<const pipeline_result*> shared_seen;
    std::vector<world::ixp_id> ixps_seen;
  };
  const auto probe = std::make_shared<probe_step>();
  (void)engine()
      .with_step(probe)
      .threads(4)
      .seed(1)
      .build()
      .run(s_->inputs());
  EXPECT_EQ(probe->sinks.size(), s_->scope.size());      // one delta per shard
  EXPECT_EQ(probe->shared_seen.size(), 1u);              // one frozen base
  std::vector<world::ixp_id> sorted_scope{s_->scope.begin(), s_->scope.end()};
  std::sort(sorted_scope.begin(), sorted_scope.end());
  std::sort(probe->ixps_seen.begin(), probe->ixps_seen.end());
  EXPECT_EQ(probe->ixps_seen, sorted_scope);             // exact partition
}

TEST_F(ParallelExecutor, SingleShardStillGetsShardContext) {
  // batch_size >= scope collapses the fan-out to one shard; the shard
  // contract (delta result, frozen shared, no nested pool) must hold
  // regardless, so custom steps behave the same for any scope size.
  struct contract_step final : inference_step {
    std::string_view name() const noexcept override { return "contract"; }
    void run(step_context& ctx) override {
      EXPECT_NE(&ctx.result, &ctx.shared());
      EXPECT_EQ(ctx.pool(), nullptr);
      EXPECT_EQ(ctx.batch.size(), ctx.scope.size());
      ++runs;
    }
    int runs = 0;
  };
  const auto probe = std::make_shared<contract_step>();
  (void)engine()
      .with_step(probe)
      .threads(2)
      .batch_size(s_->scope.size())
      .seed(1)
      .build()
      .run(s_->inputs());
  EXPECT_EQ(probe->runs, 1);
}

TEST_F(ParallelExecutor, ShardForkIsThreadAndOrderInvariant) {
  // A custom step that uses the per-shard stream to annotate: the drawn
  // values must be identical for any thread count (streams are keyed by
  // (seed, tag, first IXP of the shard), not by schedule).
  struct drawing_step final : inference_step {
    std::string_view name() const noexcept override { return "drawer"; }
    void run(step_context& ctx) override {
      auto r = ctx.shard_fork("draw");
      for (const auto x : ctx.batch)
        for (const auto& e : ctx.view.interfaces_of_ixp(x))
          ctx.result.inferences.annotate_rtt({x, e.ip}, r.uniform(0.0, 10.0));
    }
  };
  const auto run_with = [&](std::size_t threads) {
    auto b = engine().with_step(std::make_shared<drawing_step>()).seed(9);
    if (threads > 0) b.threads(threads);
    return b.build().run(s_->inputs());
  };
  const auto p2 = run_with(2);
  const auto p8 = run_with(8);
  for (const auto x : s_->scope)
    for (const auto& e : s_->view.interfaces_of_ixp(x)) {
      const iface_key k{x, e.ip};
      EXPECT_EQ(p2.inferences.rtt_min_ms(k), p8.inferences.rtt_min_ms(k));
    }
}

// ---------------------------------------------------------------------------
// Merge machinery.

TEST(InferenceMapMerge, SliceCopiesDecisionsPendingAndCounters) {
  inference_map m;
  m.decide({1, net::ipv4_addr{10}}, peering_class::local, method_step::rtt_colo);
  m.decide({1, net::ipv4_addr{11}}, peering_class::remote, method_step::port_capacity);
  m.decide({2, net::ipv4_addr{20}}, peering_class::remote, method_step::rtt_colo);
  m.annotate_rtt({1, net::ipv4_addr{12}}, 3.5);  // pending, undecided

  const world::ixp_id one[] = {1};
  const auto s = m.slice(one);
  EXPECT_EQ(s.items().size(), 2u);
  EXPECT_EQ(s.count(peering_class::local), 1u);
  EXPECT_EQ(s.count(peering_class::remote), 1u);
  EXPECT_EQ(s.rtt_min_ms({1, net::ipv4_addr{12}}), 3.5);  // pending came along
  EXPECT_EQ(s.find({2, net::ipv4_addr{20}}), nullptr);    // other IXP stays out
}

TEST(InferenceMapMerge, ReplaceSliceKeepsCountersExact) {
  inference_map base;
  base.decide({1, net::ipv4_addr{10}}, peering_class::local, method_step::rtt_colo);
  base.decide({2, net::ipv4_addr{20}}, peering_class::remote, method_step::rtt_colo);
  base.annotate_rtt({1, net::ipv4_addr{11}}, 7.0);

  const world::ixp_id one[] = {1};
  auto delta = base.slice(one);
  // The shard decides the previously pending interface (annotation must
  // fold in) and adds a new decision.
  delta.decide({1, net::ipv4_addr{11}}, peering_class::remote, method_step::rtt_threshold);
  delta.decide({1, net::ipv4_addr{12}}, peering_class::local, method_step::rtt_colo);

  base.replace_slice(one, std::move(delta));

  // Counters must equal the item tally exactly — the drift this merge
  // path is designed to prevent.
  std::size_t local = 0, remote = 0;
  for (const auto& [k, inf] : base.items()) {
    if (inf.cls == peering_class::local) ++local;
    if (inf.cls == peering_class::remote) ++remote;
  }
  EXPECT_EQ(base.count(peering_class::local), local);
  EXPECT_EQ(base.count(peering_class::remote), remote);
  EXPECT_EQ(local, 2u);
  EXPECT_EQ(remote, 2u);
  EXPECT_EQ(base.rtt_min_ms({1, net::ipv4_addr{11}}), 7.0);
  EXPECT_EQ(base.cls({2, net::ipv4_addr{20}}), peering_class::remote);  // untouched
}

TEST(InferenceMapMerge, ReplaceSliceOnAnnotatedSameInterface) {
  // Both the base (via an earlier cross-IXP step) and the shard annotate
  // the same undecided interface; after the merge exactly one pending
  // record must remain and no unknown entry may appear.
  inference_map base;
  base.annotate_rtt({3, net::ipv4_addr{30}}, 5.0);

  const world::ixp_id three[] = {3};
  auto delta = base.slice(three);
  delta.annotate_rtt({3, net::ipv4_addr{30}}, 4.0);  // shard refines the RTT
  delta.annotate_feasible({3, net::ipv4_addr{30}}, 2);
  base.replace_slice(three, std::move(delta));

  EXPECT_EQ(base.items().size(), 0u);  // still undecided: no phantom entries
  EXPECT_EQ(base.count(peering_class::unknown), 0u);
  EXPECT_EQ(base.rtt_min_ms({3, net::ipv4_addr{30}}), 4.0);
  EXPECT_EQ(base.feasible_facilities({3, net::ipv4_addr{30}}), 2);

  // A later decision folds the merged annotations in.
  base.decide({3, net::ipv4_addr{30}}, peering_class::remote, method_step::rtt_colo);
  EXPECT_EQ(base.find({3, net::ipv4_addr{30}})->rtt_min_ms, 4.0);
  EXPECT_EQ(base.find({3, net::ipv4_addr{30}})->feasible_ixp_facilities, 2);
  EXPECT_EQ(base.count(peering_class::remote), 1u);
}

TEST(Step2MergeFrom, InterleavesByVpIndexAnyOrder) {
  using measure::ping_measurement;
  const auto part = [](std::initializer_list<std::size_t> vps) {
    step2_result r;
    for (const auto vi : vps) {
      ping_measurement pm;
      pm.vp_index = vi;
      r.campaign.measurements.push_back(pm);
      r.usable_vps.push_back(vi);
    }
    r.targets_queried = vps.size();
    return r;
  };
  // VP indices are disjoint across shards (a VP belongs to one IXP).
  step2_result ab;
  ab.merge_from(part({0, 3, 5}));
  ab.merge_from(part({1, 4}));
  step2_result ba;
  ba.merge_from(part({1, 4}));
  ba.merge_from(part({0, 3, 5}));
  ASSERT_EQ(ab.campaign.measurements.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(ab.campaign.measurements[i].vp_index, ba.campaign.measurements[i].vp_index);
  EXPECT_EQ(ab.usable_vps, (std::vector<std::size_t>{0, 1, 3, 4, 5}));
  EXPECT_EQ(ab.targets_queried, 5u);
}

TEST_F(ParallelExecutor, PathExtractionPoolMatchesSerial) {
  util::thread_pool pool{4};
  const auto serial = traix::extract(s_->traces, s_->view, s_->prefix2as);
  const auto pooled = traix::extract(s_->traces, s_->view, s_->prefix2as, &pool);
  ASSERT_EQ(serial.crossings.size(), pooled.crossings.size());
  for (std::size_t i = 0; i < serial.crossings.size(); ++i) {
    EXPECT_EQ(serial.crossings[i].ixp_ip, pooled.crossings[i].ixp_ip);
    EXPECT_EQ(serial.crossings[i].rtt_to_ixp_ip_ms, pooled.crossings[i].rtt_to_ixp_ip_ms);
  }
  ASSERT_EQ(serial.adjacencies.size(), pooled.adjacencies.size());
  for (std::size_t i = 0; i < serial.adjacencies.size(); ++i)
    EXPECT_EQ(serial.adjacencies[i].member_ip, pooled.adjacencies[i].member_ip);
  ASSERT_EQ(serial.private_links.size(), pooled.private_links.size());
  for (std::size_t i = 0; i < serial.private_links.size(); ++i)
    EXPECT_EQ(serial.private_links[i].ip_a, pooled.private_links[i].ip_a);
}

// ---------------------------------------------------------------------------
// Stress: many small IXPs, one shard each, all workers busy — the load
// under which TSan would flag any executor/merge race.

TEST(ParallelStress, ManySmallIxpsUnderContention) {
  auto cfg = eval::small_scenario_config(21);
  cfg.world.n_ixps = 36;
  cfg.world.n_ases = 700;
  cfg.world.largest_ixp_members = 60;
  cfg.world.smallest_ixp_members = 8;
  cfg.top_n_ixps = 36;
  const auto s = eval::scenario::build(cfg);
  ASSERT_GE(s.scope.size(), 16u);

  const auto serial = s.run_inference();
  for (int round = 0; round < 3; ++round)
    expect_bit_identical(serial, s.run_inference_parallel(8), true, false);
}

}  // namespace
