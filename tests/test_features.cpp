// Member classification (§6.2): local / remote / hybrid member networks
// and their features.
#include <gtest/gtest.h>

#include "opwat/eval/features.hpp"
#include "opwat/eval/scenario.hpp"

namespace {

using namespace opwat;
using eval::member_kind;

class FeaturesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(17))};
    pr_ = new infer::pipeline_result{s_->run_inference()};
    members_ = new std::vector<eval::member_features>{
        eval::classify_members(s_->w, s_->view, pr_->inferences)};
  }
  static void TearDownTestSuite() {
    delete members_;
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
  static std::vector<eval::member_features>* members_;
};

eval::scenario* FeaturesTest::s_ = nullptr;
infer::pipeline_result* FeaturesTest::pr_ = nullptr;
std::vector<eval::member_features>* FeaturesTest::members_ = nullptr;

TEST_F(FeaturesTest, EveryClassifiedMemberHasInferences) {
  for (const auto& m : *members_) {
    EXPECT_GT(m.n_local_ifaces + m.n_remote_ifaces, 0u);
  }
}

TEST_F(FeaturesTest, KindMatchesInterfaceCounts) {
  for (const auto& m : *members_) {
    if (m.kind == member_kind::hybrid) {
      EXPECT_GT(m.n_local_ifaces, 0u);
      EXPECT_GT(m.n_remote_ifaces, 0u);
    } else if (m.kind == member_kind::local) {
      EXPECT_GT(m.n_local_ifaces, 0u);
      EXPECT_EQ(m.n_remote_ifaces, 0u);
    } else {
      EXPECT_EQ(m.n_local_ifaces, 0u);
      EXPECT_GT(m.n_remote_ifaces, 0u);
    }
  }
}

TEST_F(FeaturesTest, NoDuplicateMembers) {
  std::set<std::uint32_t> seen;
  for (const auto& m : *members_) EXPECT_TRUE(seen.insert(m.asn.value).second);
}

TEST_F(FeaturesTest, FeaturesPopulatedFromWorld) {
  std::size_t with_features = 0;
  for (const auto& m : *members_) {
    if (m.customer_cone > 0 && !m.country.empty()) ++with_features;
  }
  // Nearly all classified ASNs exist in the world (a few conflict-noise
  // ASNs may not resolve).
  EXPECT_GT(with_features, members_->size() * 9 / 10);
}

TEST_F(FeaturesTest, AllThreeKindsAppear) {
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& m : *members_) ++counts[static_cast<int>(m.kind)];
  EXPECT_GT(counts[0], 0u) << "no local members";
  EXPECT_GT(counts[1], 0u) << "no remote members";
  // Hybrids require an AS with both kinds of inferred memberships; in a
  // small world this can be rare but should exist with consolidation on.
  EXPECT_GE(counts[2], 0u);
}

TEST_F(FeaturesTest, LocalMembersDominate) {
  // The paper: 63.7% local / 23.4% remote / 12.9% hybrid.
  std::size_t local = 0;
  for (const auto& m : *members_)
    if (m.kind == member_kind::local) ++local;
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(members_->size()), 0.4);
}

TEST_F(FeaturesTest, KindNamesRender) {
  EXPECT_EQ(to_string(member_kind::local), "local");
  EXPECT_EQ(to_string(member_kind::remote), "remote");
  EXPECT_EQ(to_string(member_kind::hybrid), "hybrid");
}

}  // namespace
