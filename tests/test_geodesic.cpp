#include <gtest/gtest.h>

#include "opwat/geo/geodesic.hpp"
#include "opwat/world/cities.hpp"

namespace {

using namespace opwat::geo;
using opwat::world::find_city;

TEST(Geodesic, ZeroForIdenticalPoints) {
  const geo_point p{52.37, 4.89};
  EXPECT_DOUBLE_EQ(geodesic_km(p, p), 0.0);
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Geodesic, KnownDistanceAmsterdamLondon) {
  const auto* ams = find_city("Amsterdam");
  const auto* lon = find_city("London");
  ASSERT_TRUE(ams && lon);
  const double d = geodesic_km(ams->location, lon->location);
  EXPECT_NEAR(d, 358.0, 15.0);  // great-circle ~357 km
}

TEST(Geodesic, KnownDistanceLondonBucharest) {
  // NL-IX's London and Bucharest sites are "over 1,300 km" apart (§4.2).
  const auto* lon = find_city("London");
  const auto* buc = find_city("Bucharest");
  ASSERT_TRUE(lon && buc);
  EXPECT_GT(geodesic_km(lon->location, buc->location), 1300.0);
  EXPECT_LT(geodesic_km(lon->location, buc->location), 2300.0);
}

TEST(Geodesic, KnownDistanceFrankfurtPrague) {
  // Fig. 2a example: FRA-PRA are close (7 ms RTT) -> ~400 km.
  const auto* fra = find_city("Frankfurt");
  const auto* pra = find_city("Prague");
  ASSERT_TRUE(fra && pra);
  EXPECT_NEAR(geodesic_km(fra->location, pra->location), 410.0, 40.0);
}

TEST(Geodesic, Symmetry) {
  const geo_point a{48.85, 2.35}, b{-33.87, 151.21};
  EXPECT_NEAR(geodesic_km(a, b), geodesic_km(b, a), 1e-6);
}

TEST(Geodesic, AgreesWithHaversineWithinFlatteningError) {
  const geo_point a{52.37, 4.89}, b{40.71, -74.01};
  const double g = geodesic_km(a, b);
  const double h = haversine_km(a, b);
  EXPECT_NEAR(g, h, h * 0.01);  // ellipsoidal correction < 1%
}

TEST(Geodesic, AntipodalDoesNotHang) {
  const geo_point a{0.0, 0.0}, b{0.0, 179.9999};
  const double d = geodesic_km(a, b);
  EXPECT_GT(d, 19000.0);
  EXPECT_LT(d, 20100.0);
}

TEST(Geodesic, Validity) {
  EXPECT_TRUE(is_valid({0, 0}));
  EXPECT_TRUE(is_valid({-90, 180}));
  EXPECT_FALSE(is_valid({-91, 0}));
  EXPECT_FALSE(is_valid({0, 181}));
}

TEST(OffsetKm, DistanceMatchesRequest) {
  const geo_point origin{50.0, 8.0};
  for (const double dist : {1.0, 10.0, 100.0, 500.0}) {
    const auto p = offset_km(origin, 45.0, dist);
    EXPECT_NEAR(geodesic_km(origin, p), dist, dist * 0.01 + 0.1);
  }
}

TEST(OffsetKm, WrapsLongitude) {
  const geo_point origin{0.0, 179.5};
  const auto p = offset_km(origin, 90.0, 200.0);
  EXPECT_LE(p.lon_deg, 180.0);
  EXPECT_GE(p.lon_deg, -180.0);
}

// Property: triangle inequality over city triples.
struct Triple {
  const char* a;
  const char* b;
  const char* c;
};

class TriangleInequality : public ::testing::TestWithParam<Triple> {};

TEST_P(TriangleInequality, Holds) {
  const auto [an, bn, cn] = GetParam();
  const auto *a = find_city(an), *b = find_city(bn), *c = find_city(cn);
  ASSERT_TRUE(a && b && c);
  const double ab = geodesic_km(a->location, b->location);
  const double bc = geodesic_km(b->location, c->location);
  const double ac = geodesic_km(a->location, c->location);
  EXPECT_LE(ac, ab + bc + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(CityTriples, TriangleInequality,
                         ::testing::Values(Triple{"Amsterdam", "Frankfurt", "London"},
                                           Triple{"Tokyo", "Singapore", "Sydney"},
                                           Triple{"New York", "London", "Moscow"},
                                           Triple{"Sao Paulo", "Lagos", "Paris"},
                                           Triple{"Seattle", "Honolulu", "Auckland"}));

TEST(Cities, TableIsWellFormed) {
  const auto table = opwat::world::city_table();
  EXPECT_GE(table.size(), 100u);
  for (const auto& c : table) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_EQ(c.country.size(), 2u);
    EXPECT_TRUE(is_valid(c.location)) << c.name;
    EXPECT_GT(c.hub_weight, 0.0);
  }
}

TEST(Cities, LookupByName) {
  EXPECT_NE(find_city("Frankfurt"), nullptr);
  EXPECT_EQ(find_city("Atlantis"), nullptr);
}

}  // namespace
