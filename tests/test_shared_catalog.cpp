// Snapshot-isolated concurrent serving (opwat/serve/shared_catalog.hpp).
// Pins the RCU contract: reader threads issue fluent queries against
// snapshots while a writer ingests epochs; every result corresponds to
// a fully-published snapshot (never a torn one), held snapshots are
// immutable, and failed writes publish nothing.  This suite runs in the
// TSan CI job — the atomic publish/acquire pair is the code under test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"
#include "opwat/serve/shared_catalog.hpp"
#include "opwat/serve/store.hpp"

namespace {

using namespace opwat;
using infer::peering_class;

std::string epoch_label(std::size_t e) { return "epoch-" + std::to_string(e); }

/// Scenario plus one pre-computed pipeline result per epoch, so the
/// concurrency test's writer spends its time in ingest/publish (the
/// code under test), not in the inference pipeline.
struct corpus {
  static constexpr std::size_t k_epochs = 5;

  eval::scenario s;
  std::vector<infer::pipeline_result> prs;

  static corpus build() {
    auto cfg = eval::small_scenario_config(29);
    cfg.world.n_ases = 400;
    cfg.world.largest_ixp_members = 120;
    corpus c{eval::scenario::build(cfg), {}};
    auto pcfg = c.s.cfg.pipeline;
    for (std::size_t e = 0; e < k_epochs; ++e) {
      c.prs.push_back(c.s.run_inference(pcfg));
      pcfg.seed += 1;
    }
    return c;
  }
};

class SharedCatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { c_ = new corpus{corpus::build()}; }
  static void TearDownTestSuite() {
    delete c_;
    c_ = nullptr;
  }
  static corpus* c_;
};

corpus* SharedCatalogTest::c_ = nullptr;

// --- single-threaded semantics ----------------------------------------------

TEST_F(SharedCatalogTest, IngestMatchesPlainCatalog) {
  serve::shared_catalog sc;
  serve::catalog plain;
  for (std::size_t e = 0; e < 2; ++e) {
    sc.ingest(c_->s.w, c_->s.view, c_->prs[e], epoch_label(e));
    plain.ingest(c_->s.w, c_->s.view, c_->prs[e], epoch_label(e));
  }
  const auto snap = sc.snapshot();
  ASSERT_EQ(snap->labels(), plain.labels());
  for (const auto& label : plain.labels()) {
    EXPECT_EQ(serve::query(*snap).epoch(label).count(),
              serve::query(plain).epoch(label).count());
    EXPECT_EQ(snap->of(label).total(peering_class::remote),
              plain.of(label).total(peering_class::remote));
  }
}

TEST_F(SharedCatalogTest, SnapshotIsolation) {
  serve::shared_catalog sc;
  sc.ingest(c_->s.w, c_->s.view, c_->prs[0], epoch_label(0));
  const auto before = sc.snapshot();
  sc.ingest(c_->s.w, c_->s.view, c_->prs[1], epoch_label(1));
  // The held snapshot still sees exactly one epoch; a fresh one sees two.
  EXPECT_EQ(before->epoch_count(), 1u);
  EXPECT_EQ(sc.snapshot()->epoch_count(), 2u);
  EXPECT_FALSE(before->find(epoch_label(1)).has_value());
}

TEST_F(SharedCatalogTest, FailedIngestPublishesNothing) {
  serve::shared_catalog sc;
  sc.ingest(c_->s.w, c_->s.view, c_->prs[0], "dup");
  const auto before = sc.snapshot();
  EXPECT_THROW(sc.ingest(c_->s.w, c_->s.view, c_->prs[1], "dup"),
               serve::catalog_error);
  // The published pointer did not move: readers keep the old view.
  EXPECT_EQ(sc.snapshot().get(), before.get());
  EXPECT_EQ(sc.epoch_count(), 1u);
}

TEST_F(SharedCatalogTest, PersistenceRoundTripThroughHandle) {
  const auto path = testing::TempDir() + "shared_catalog.opwatc";
  serve::shared_catalog writer;
  writer.ingest(c_->s.w, c_->s.view, c_->prs[0], epoch_label(0));
  writer.save(path);

  serve::shared_catalog reader;
  reader.load(path);
  EXPECT_EQ(reader.snapshot()->labels(), writer.snapshot()->labels());

  writer.clear();
  EXPECT_EQ(writer.epoch_count(), 0u);
  writer.merge_from(path);
  EXPECT_EQ(writer.epoch_count(), 1u);
}

// --- the concurrency gate ----------------------------------------------------

TEST_F(SharedCatalogTest, ConcurrentReadersSeeOnlyPublishedSnapshots) {
  // Expected per-epoch invariants, computed up front from plain
  // catalogs: total rows and remote totals per label.
  std::vector<std::size_t> rows_of(corpus::k_epochs);
  std::vector<std::size_t> remote_of(corpus::k_epochs);
  {
    serve::catalog plain;
    for (std::size_t e = 0; e < corpus::k_epochs; ++e) {
      const auto id = plain.ingest(c_->s.w, c_->s.view, c_->prs[e], epoch_label(e));
      rows_of[e] = plain.at(id).rows();
      remote_of[e] = plain.at(id).total(peering_class::remote);
    }
  }

  serve::shared_catalog sc;
  sc.ingest(c_->s.w, c_->s.view, c_->prs[0], epoch_label(0));

  constexpr int k_readers = 4;
  std::atomic<bool> writer_done{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::string> failures(k_readers);

  std::vector<std::thread> readers;
  readers.reserve(k_readers);
  for (int t = 0; t < k_readers; ++t) {
    readers.emplace_back([&, t] {
      std::size_t local_reads = 0;
      std::size_t max_seen = 1;
      while (!writer_done.load(std::memory_order_acquire) || local_reads < 50) {
        const auto snap = sc.snapshot();
        const auto n = snap->epoch_count();
        // Published snapshots only: the epoch count is in range, never
        // goes backwards within this reader, and every epoch present is
        // complete (its row and remote counts match the precomputed
        // truth, and its queries are self-consistent).
        if (n < 1 || n > corpus::k_epochs) {
          failures[t] = "epoch count out of range: " + std::to_string(n);
          break;
        }
        if (n < max_seen) {
          failures[t] = "snapshot went backwards";
          break;
        }
        max_seen = n;
        const auto e = local_reads % n;  // rotate over the published epochs
        const auto& ep = snap->at(static_cast<serve::epoch_id>(e));
        if (ep.label() != epoch_label(e) || ep.rows() != rows_of[e] ||
            ep.total(peering_class::remote) != remote_of[e]) {
          failures[t] = "torn epoch " + std::to_string(e);
          break;
        }
        const auto remote = serve::query(*snap)
                                .epoch(epoch_label(e))
                                .cls(peering_class::remote)
                                .count();
        if (remote != remote_of[e]) {
          failures[t] = "query disagrees with published epoch";
          break;
        }
        ++local_reads;
      }
      reads.fetch_add(local_reads, std::memory_order_relaxed);
    });
  }

  std::thread writer{[&] {
    for (std::size_t e = 1; e < corpus::k_epochs; ++e)
      sc.ingest(c_->s.w, c_->s.view, c_->prs[e], epoch_label(e));
    writer_done.store(true, std::memory_order_release);
  }};

  writer.join();
  for (auto& r : readers) r.join();

  for (int t = 0; t < k_readers; ++t) EXPECT_EQ(failures[t], "") << "reader " << t;
  EXPECT_EQ(sc.epoch_count(), corpus::k_epochs);
  EXPECT_GE(reads.load(), static_cast<std::size_t>(k_readers) * 50);
}

TEST_F(SharedCatalogTest, ConcurrentWritersCompose) {
  // Two writer threads ingesting disjoint label sets: writer
  // serialization must make both land (no lost updates).
  serve::shared_catalog sc;
  const auto ingest_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e)
      sc.ingest(c_->s.w, c_->s.view, c_->prs[e], epoch_label(e));
  };
  std::thread a{[&] { ingest_range(0, 2); }};
  std::thread b{[&] { ingest_range(2, 4); }};
  a.join();
  b.join();
  const auto snap = sc.snapshot();
  ASSERT_EQ(snap->epoch_count(), 4u);
  for (std::size_t e = 0; e < 4; ++e)
    EXPECT_TRUE(snap->find(epoch_label(e)).has_value()) << e;
}

}  // namespace
