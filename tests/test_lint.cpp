// The correctness tooling itself: tools/opwat_lint's rule engine, run
// in-process over small fixture sources — one violation per rule, plus
// suppressed variants — asserting the exact findings (rule, line), the
// suppression contract (reason required, unknown rules rejected,
// whole-line comments bind to the next code line), the lexical
// stripping (strings/comments never trigger rules) and the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "opwat_lint/lint.hpp"

namespace {

using opwat::lint::classify;
using opwat::lint::file_kind;
using opwat::lint::finding;
using opwat::lint::lint_files;
using opwat::lint::lint_source;

/// Findings of one rule, as their 1-based lines.
std::vector<int> lines_of(const std::vector<finding>& fs, const std::string& rule) {
  std::vector<int> out;
  for (const auto& f : fs)
    if (f.rule == rule) out.push_back(f.line);
  return out;
}

constexpr const char* k_src = "src/opwat/infer/fixture.cpp";

// --- classification ----------------------------------------------------------

TEST(LintClassify, ByNearestKnownSegment) {
  EXPECT_EQ(classify("src/opwat/infer/engine.cpp"), file_kind::source);
  EXPECT_EQ(classify("/abs/repo/src/opwat/util/rng.hpp"), file_kind::source);
  EXPECT_EQ(classify("tests/test_store.cpp"), file_kind::test);
  EXPECT_EQ(classify("bench/bench_catalog_io.cpp"), file_kind::bench);
  EXPECT_EQ(classify("examples/quickstart.cpp"), file_kind::example);
  EXPECT_EQ(classify("tools/opwat_lint/lint.cpp"), file_kind::tool);
  EXPECT_EQ(classify("README.md"), file_kind::other);
}

// --- nondeterminism ----------------------------------------------------------

TEST(LintNondeterminism, FlagsEveryBannedSource) {
  const std::string text =
      "#include <random>\n"                          // 1: engine headers are fine
      "int a() { return std::rand(); }\n"            // 2
      "std::random_device dev;\n"                    // 3
      "long b() { return time(nullptr); }\n"         // 4
      "auto c = std::chrono::system_clock::now();\n" // 5
      "int lifetime = 3; // not a time() call\n";    // 6: token boundaries
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "nondeterminism"), (std::vector<int>{2, 3, 4, 5}));
}

TEST(LintNondeterminism, IdentifiersInStringsAndCommentsAreIgnored) {
  const std::string text =
      "const char* s = \"std::rand() time( random_device\";\n"
      "// std::rand() would be nondeterministic here\n"
      "/* system_clock::now() too */\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintNondeterminism, NotAppliedToBenchOrTests) {
  const std::string text = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", text).empty());
  EXPECT_TRUE(lint_source("tests/test_x.cpp", text).empty());
  EXPECT_EQ(lint_source(k_src, text).size(), 1u);
}

// --- unordered-iter ----------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedDeclaredInFile) {
  const std::string text =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> acc;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"  // 4
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "unordered-iter"), (std::vector<int>{4}));
}

TEST(LintUnorderedIter, OrderedContainersAndPlainForsAreFine) {
  const std::string text =
      "std::map<int, int> acc;\n"
      "std::unordered_map<int, int> lookup;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"
      "  for (std::size_t i = 0; i < 3; ++i) use(i, lookup.at(i));\n"
      "}\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintUnorderedIter, SeesThroughLocalUsingAliases) {
  const std::string text =
      "template <typename T>\n"
      "using string_map = std::unordered_map<std::string, T>;\n"
      "string_map<int> by_label;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : by_label) use(k, v);\n"  // 5
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "unordered-iter"), (std::vector<int>{5}));
}

TEST(LintUnorderedIter, CompanionHeaderMembersAreSeeded) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/serve/thing.hpp",
       "#pragma once\n"
       "#include <unordered_map>\n"
       "class thing {\n"
       "  std::unordered_map<int, int> index_;\n"
       "};\n"},
      {"src/opwat/serve/thing.cpp",
       "#include \"opwat/serve/thing.hpp\"\n"
       "void thing_dump() {\n"
       "  for (const auto& [k, v] : index_) use(k, v);\n"  // 3
       "}\n"},
  };
  const auto fs = lint_files(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "src/opwat/serve/thing.cpp");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(LintUnorderedIter, AppliesToTestsAndBenchesToo) {
  const std::string text =
      "std::unordered_set<int> seen;\n"
      "void f() {\n"
      "  for (const auto v : seen) use(v);\n"
      "}\n";
  EXPECT_EQ(lint_source("tests/test_x.cpp", text).size(), 1u);
  EXPECT_EQ(lint_source("bench/bench_x.cpp", text).size(), 1u);
}

// --- float-compare -----------------------------------------------------------

TEST(LintFloatCompare, FlagsLiteralComparisonsEitherSide) {
  const std::string text =
      "bool a(double x) { return x == 0.0; }\n"    // 1
      "bool b(double x) { return 1.5f != x; }\n"   // 2
      "bool c(double x) { return x == 1e-3; }\n"   // 3
      "bool d(int x) { return x == 3; }\n"         // 4: integer, fine
      "bool e(double x, double y) { return x == y; }\n";  // 5: no literal
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{1, 2, 3}));
}

TEST(LintFloatCompare, CompoundOperatorsAreNotComparisons) {
  const std::string text =
      "void f(double& x) { x += 1.0; x -= 2.5; x *= 3.0; }\n"
      "bool g(double x) { return x <= 1.0 || x >= 0.5; }\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

// --- bare-assert -------------------------------------------------------------

TEST(LintBareAssert, FlagsAssertCallAndCassertInclude) {
  const std::string text =
      "#include <cassert>\n"                        // 1
      "void f(int x) {\n"
      "  assert(x > 0);\n"                          // 3
      "  static_assert(sizeof(int) == 4);\n"        // 4: distinct token
      "  OPWAT_ASSERT(x > 0, \"positive\");\n"      // 5: the replacement
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bare-assert"), (std::vector<int>{1, 3}));
}

TEST(LintBareAssert, GtestSourcesMayAssert) {
  const std::string text = "void f(int x) { assert(x > 0); }\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", text).empty());
}

// --- include-hygiene ---------------------------------------------------------

TEST(LintIncludeHygiene, HeaderMustOpenWithPragmaOnce) {
  const auto fs = lint_source("src/opwat/util/fixture.hpp",
                              "// licence text\n"
                              "#include <vector>\n");
  EXPECT_EQ(lines_of(fs, "include-hygiene"), (std::vector<int>{1}));
  EXPECT_TRUE(lint_source("src/opwat/util/fixture.hpp",
                          "// licence text\n"
                          "#pragma once\n"
                          "#include <vector>\n")
                  .empty());
}

TEST(LintIncludeHygiene, ParentRelativeAndUnrootedIncludes) {
  const std::string text =
      "#include \"../util/rng.hpp\"\n"       // 1: parent-relative
      "#include \"helpers.hpp\"\n"           // 2: not opwat/-rooted (src only)
      "#include \"opwat/util/rng.hpp\"\n"    // 3: fine
      "#include <vector>\n";                 // 4: fine
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "include-hygiene"), (std::vector<int>{1, 2}));
  // Outside src/, only the parent-relative form is a finding.
  const auto bench = lint_source("bench/bench_x.cpp", text);
  EXPECT_EQ(lines_of(bench, "include-hygiene"), (std::vector<int>{1}));
}

// --- suppressions ------------------------------------------------------------

TEST(LintSuppression, TrailingAndWholeLineCommentsWithReasons) {
  const std::string text =
      "std::unordered_map<int, int> acc;\n"
      "void f(double x) {\n"
      "  // opwat-lint: allow(unordered-iter): summed into a counter,\n"
      "  // order-insensitive by construction\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(float-compare): sentinel\n"
      "  use(z);\n"
      "}\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintSuppression, ReasonIsRequired) {
  const std::string text =
      "void f(double x) {\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(float-compare)\n"
      "  use(z);\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bad-suppression"), (std::vector<int>{2}));
  // The suppression is void, so the violation still reports.
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{2}));
}

TEST(LintSuppression, UnknownRuleIsRejected) {
  const std::string text =
      "void f(double x) {\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(flaot-compare): typo\n"
      "  use(z);\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bad-suppression"), (std::vector<int>{2}));
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{2}));
}

TEST(LintSuppression, OnlyNamedRulesAreSuppressed) {
  const std::string text =
      "void f(double x) {\n"
      "  assert(x == 0.0);  // opwat-lint: allow(float-compare): sentinel\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_TRUE(lines_of(fs, "float-compare").empty());
  EXPECT_EQ(lines_of(fs, "bare-assert"), (std::vector<int>{2}));
}

// --- report ------------------------------------------------------------------

TEST(LintReport, JsonCarriesEveryFindingEscaped) {
  const std::vector<finding> fs = {
      {"src/a.cpp", 3, "float-compare", "say \"why\""},
  };
  const auto json = opwat::lint::to_json(fs);
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"float-compare\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"why\\\""), std::string::npos);
  EXPECT_EQ(opwat::lint::to_json({}).find("\"findings\": []"), 4u);
}

TEST(LintReport, FindingsAreSortedByFileLineRule) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/b.cpp", "bool f(double x) { return x == 0.0; }\n"},
      {"src/opwat/a.cpp",
       "bool f(double x) { return x == 0.0; }\n"
       "void g(int x) { assert(x); }\n"},
  };
  const auto fs = lint_files(files);
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "src/opwat/a.cpp");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].file, "src/opwat/a.cpp");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].file, "src/opwat/b.cpp");
}

}  // namespace
