// The correctness tooling itself: tools/opwat_lint's rule engine, run
// in-process over small fixture sources — one violation per rule, plus
// suppressed variants — asserting the exact findings (rule, line), the
// suppression contract (reason required, unknown rules rejected,
// whole-line comments bind to the next code line), the lexical
// stripping (strings/comments never trigger rules) and the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "opwat_lint/lint.hpp"

namespace {

using opwat::lint::classify;
using opwat::lint::file_kind;
using opwat::lint::finding;
using opwat::lint::lint_files;
using opwat::lint::lint_source;

/// Findings of one rule, as their 1-based lines.
std::vector<int> lines_of(const std::vector<finding>& fs, const std::string& rule) {
  std::vector<int> out;
  for (const auto& f : fs)
    if (f.rule == rule) out.push_back(f.line);
  return out;
}

constexpr const char* k_src = "src/opwat/infer/fixture.cpp";

// --- classification ----------------------------------------------------------

TEST(LintClassify, ByNearestKnownSegment) {
  EXPECT_EQ(classify("src/opwat/infer/engine.cpp"), file_kind::source);
  EXPECT_EQ(classify("/abs/repo/src/opwat/util/rng.hpp"), file_kind::source);
  EXPECT_EQ(classify("tests/test_store.cpp"), file_kind::test);
  EXPECT_EQ(classify("bench/bench_catalog_io.cpp"), file_kind::bench);
  EXPECT_EQ(classify("examples/quickstart.cpp"), file_kind::example);
  EXPECT_EQ(classify("tools/opwat_lint/lint.cpp"), file_kind::tool);
  EXPECT_EQ(classify("README.md"), file_kind::other);
}

// --- nondeterminism ----------------------------------------------------------

TEST(LintNondeterminism, FlagsEveryBannedSource) {
  const std::string text =
      "#include <random>\n"                          // 1: engine headers are fine
      "int a() { return std::rand(); }\n"            // 2
      "std::random_device dev;\n"                    // 3
      "long b() { return time(nullptr); }\n"         // 4
      "auto c = std::chrono::system_clock::now();\n" // 5
      "int lifetime = 3; // not a time() call\n";    // 6: token boundaries
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "nondeterminism"), (std::vector<int>{2, 3, 4, 5}));
}

TEST(LintNondeterminism, IdentifiersInStringsAndCommentsAreIgnored) {
  const std::string text =
      "const char* s = \"std::rand() time( random_device\";\n"
      "// std::rand() would be nondeterministic here\n"
      "/* system_clock::now() too */\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintNondeterminism, NotAppliedToBenchOrTests) {
  const std::string text = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", text).empty());
  EXPECT_TRUE(lint_source("tests/test_x.cpp", text).empty());
  EXPECT_EQ(lint_source(k_src, text).size(), 1u);
}

// --- unordered-iter ----------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedDeclaredInFile) {
  const std::string text =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> acc;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"  // 4
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "unordered-iter"), (std::vector<int>{4}));
}

TEST(LintUnorderedIter, OrderedContainersAndPlainForsAreFine) {
  const std::string text =
      "std::map<int, int> acc;\n"
      "std::unordered_map<int, int> lookup;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"
      "  for (std::size_t i = 0; i < 3; ++i) use(i, lookup.at(i));\n"
      "}\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintUnorderedIter, SeesThroughLocalUsingAliases) {
  const std::string text =
      "template <typename T>\n"
      "using string_map = std::unordered_map<std::string, T>;\n"
      "string_map<int> by_label;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : by_label) use(k, v);\n"  // 5
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "unordered-iter"), (std::vector<int>{5}));
}

TEST(LintUnorderedIter, CompanionHeaderMembersAreSeeded) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/serve/thing.hpp",
       "#pragma once\n"
       "#include <unordered_map>\n"
       "class thing {\n"
       "  std::unordered_map<int, int> index_;\n"
       "};\n"},
      {"src/opwat/serve/thing.cpp",
       "#include \"opwat/serve/thing.hpp\"\n"
       "void thing_dump() {\n"
       "  for (const auto& [k, v] : index_) use(k, v);\n"  // 3
       "}\n"},
  };
  const auto fs = lint_files(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "src/opwat/serve/thing.cpp");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(LintUnorderedIter, AppliesToTestsAndBenchesToo) {
  const std::string text =
      "std::unordered_set<int> seen;\n"
      "void f() {\n"
      "  for (const auto v : seen) use(v);\n"
      "}\n";
  EXPECT_EQ(lint_source("tests/test_x.cpp", text).size(), 1u);
  EXPECT_EQ(lint_source("bench/bench_x.cpp", text).size(), 1u);
}

// --- float-compare -----------------------------------------------------------

TEST(LintFloatCompare, FlagsLiteralComparisonsEitherSide) {
  const std::string text =
      "bool a(double x) { return x == 0.0; }\n"    // 1
      "bool b(double x) { return 1.5f != x; }\n"   // 2
      "bool c(double x) { return x == 1e-3; }\n"   // 3
      "bool d(int x) { return x == 3; }\n"         // 4: integer, fine
      "bool e(double x, double y) { return x == y; }\n";  // 5: no literal
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{1, 2, 3}));
}

TEST(LintFloatCompare, CompoundOperatorsAreNotComparisons) {
  const std::string text =
      "void f(double& x) { x += 1.0; x -= 2.5; x *= 3.0; }\n"
      "bool g(double x) { return x <= 1.0 || x >= 0.5; }\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

// --- bare-assert -------------------------------------------------------------

TEST(LintBareAssert, FlagsAssertCallAndCassertInclude) {
  const std::string text =
      "#include <cassert>\n"                        // 1
      "void f(int x) {\n"
      "  assert(x > 0);\n"                          // 3
      "  static_assert(sizeof(int) == 4);\n"        // 4: distinct token
      "  OPWAT_ASSERT(x > 0, \"positive\");\n"      // 5: the replacement
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bare-assert"), (std::vector<int>{1, 3}));
}

TEST(LintBareAssert, GtestSourcesMayAssert) {
  const std::string text = "void f(int x) { assert(x > 0); }\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", text).empty());
}

// --- include-hygiene ---------------------------------------------------------

TEST(LintIncludeHygiene, HeaderMustOpenWithPragmaOnce) {
  const auto fs = lint_source("src/opwat/util/fixture.hpp",
                              "// licence text\n"
                              "#include <vector>\n");
  EXPECT_EQ(lines_of(fs, "include-hygiene"), (std::vector<int>{1}));
  EXPECT_TRUE(lint_source("src/opwat/util/fixture.hpp",
                          "// licence text\n"
                          "#pragma once\n"
                          "#include <vector>\n")
                  .empty());
}

TEST(LintIncludeHygiene, ParentRelativeAndUnrootedIncludes) {
  const std::string text =
      "#include \"../util/rng.hpp\"\n"       // 1: parent-relative
      "#include \"helpers.hpp\"\n"           // 2: not opwat/-rooted (src only)
      "#include \"opwat/util/rng.hpp\"\n"    // 3: fine
      "#include <vector>\n";                 // 4: fine
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "include-hygiene"), (std::vector<int>{1, 2}));
  // Outside src/, only the parent-relative form is a finding.
  const auto bench = lint_source("bench/bench_x.cpp", text);
  EXPECT_EQ(lines_of(bench, "include-hygiene"), (std::vector<int>{1}));
}

// --- suppressions ------------------------------------------------------------

TEST(LintSuppression, TrailingAndWholeLineCommentsWithReasons) {
  const std::string text =
      "std::unordered_map<int, int> acc;\n"
      "void f(double x) {\n"
      "  // opwat-lint: allow(unordered-iter): summed into a counter,\n"
      "  // order-insensitive by construction\n"
      "  for (const auto& [k, v] : acc) use(k, v);\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(float-compare): sentinel\n"
      "  use(z);\n"
      "}\n";
  EXPECT_TRUE(lint_source(k_src, text).empty());
}

TEST(LintSuppression, ReasonIsRequired) {
  const std::string text =
      "void f(double x) {\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(float-compare)\n"
      "  use(z);\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bad-suppression"), (std::vector<int>{2}));
  // The suppression is void, so the violation still reports.
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{2}));
}

TEST(LintSuppression, UnknownRuleIsRejected) {
  const std::string text =
      "void f(double x) {\n"
      "  bool z = x == 0.0;  // opwat-lint: allow(flaot-compare): typo\n"
      "  use(z);\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "bad-suppression"), (std::vector<int>{2}));
  EXPECT_EQ(lines_of(fs, "float-compare"), (std::vector<int>{2}));
}

TEST(LintSuppression, OnlyNamedRulesAreSuppressed) {
  const std::string text =
      "void f(double x) {\n"
      "  assert(x == 0.0);  // opwat-lint: allow(float-compare): sentinel\n"
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_TRUE(lines_of(fs, "float-compare").empty());
  EXPECT_EQ(lines_of(fs, "bare-assert"), (std::vector<int>{2}));
}

// --- report ------------------------------------------------------------------

TEST(LintReport, JsonCarriesEveryFindingEscaped) {
  const std::vector<finding> fs = {
      {"src/a.cpp", 3, "float-compare", "say \"why\""},
  };
  const auto json = opwat::lint::to_json(fs);
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"float-compare\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"why\\\""), std::string::npos);
  EXPECT_EQ(opwat::lint::to_json({}).find("\"findings\": []"), 4u);
}

TEST(LintReport, FindingsAreSortedByFileLineRule) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/b.cpp", "bool f(double x) { return x == 0.0; }\n"},
      {"src/opwat/a.cpp",
       "bool f(double x) { return x == 0.0; }\n"
       "void g(int x) { assert(x); }\n"},
  };
  const auto fs = lint_files(files);
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "src/opwat/a.cpp");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].file, "src/opwat/a.cpp");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].file, "src/opwat/b.cpp");
}

// --- raw-lock ----------------------------------------------------------------

TEST(LintRawLock, FlagsManualLockCalls) {
  const std::string text =
      "void f() {\n"                         // 1
      "  mu.lock();\n"                       // 2
      "  ptr->unlock();\n"                   // 3
      "  if (mu.try_lock()) {}\n"            // 4
      "  rw.lock_shared();\n"                // 5
      "  rw.unlock_shared();\n"              // 6
      "}\n";
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "raw-lock"), (std::vector<int>{2, 3, 4, 5, 6}));
}

TEST(LintRawLock, RaiiGuardsAndNonMemberTokensPass) {
  const std::string text =
      "void f() {\n"
      "  const util::mutex_lock lock{m_};\n"
      "  std::lock_guard<std::mutex> g{mu};\n"
      "  my_unlock();\n"            // free function, not a member call
      "  int lock = 3; (void)lock;\n"  // not a call at all
      "}\n";
  EXPECT_TRUE(lines_of(lint_source(k_src, text), "raw-lock").empty());
}

TEST(LintRawLock, SuppressionWithReasonSilences) {
  const std::string text =
      "void f() {\n"
      "  m_.lock();  // opwat-lint: allow(raw-lock): wrapper implementation\n"
      "}\n";
  EXPECT_TRUE(lines_of(lint_source(k_src, text), "raw-lock").empty());
}

TEST(LintRawLock, ActiveInEveryFileKind) {
  const std::string text = "void f() { mu.lock(); }\n";
  for (const char* path : {"src/opwat/x.cpp", "tests/test_x.cpp",
                           "bench/bench_x.cpp", "examples/x.cpp",
                           "tools/t/x.cpp"})
    EXPECT_EQ(lines_of(lint_source(path, text), "raw-lock").size(), 1u) << path;
}

// --- blocking-in-handler -----------------------------------------------------

TEST(LintBlockingInHandler, FlagsBlockingCallsOnlyInsideRegion) {
  const std::string text =
      "void before() { poll(fds, 1, -1); }\n"                  // 1: outside
      "// opwat-lint: region(nonblocking): acceptor hot path\n" // 2
      "void handler() {\n"                                     // 3
      "  std::this_thread::sleep_for(t);\n"                    // 4
      "  ::send(fd, p, n, 0);\n"                               // 5
      "  worker.join();\n"                                     // 6
      "  std::ifstream in{path};\n"                            // 7
      "  net::send_all(fd, data, budget_ms);\n"                // 8: bounded, ok
      "}\n"                                                    // 9
      "// opwat-lint: endregion(nonblocking)\n"                // 10
      "void after() { cv.wait(lk); }\n";                       // 11: outside
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "blocking-in-handler"), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_TRUE(lines_of(fs, "bad-suppression").empty());
}

TEST(LintBlockingInHandler, SuppressionAndRegionHygiene) {
  const std::string with_allow =
      "// opwat-lint: region(nonblocking): worker path\n"
      "void h() {\n"
      "  q.wait(lk);  // opwat-lint: allow(blocking-in-handler): bounded by test harness timeout\n"
      "}\n"
      "// opwat-lint: endregion(nonblocking)\n";
  EXPECT_TRUE(
      lines_of(lint_source(k_src, with_allow), "blocking-in-handler").empty());

  // A region without a reason, an unknown region name, an unmatched
  // endregion and an unclosed region are each bad-suppression findings.
  EXPECT_EQ(lines_of(lint_source(k_src,
                                 "// opwat-lint: region(nonblocking)\n"),
                     "bad-suppression"),
            (std::vector<int>{1}));
  EXPECT_EQ(lines_of(lint_source(k_src,
                                 "// opwat-lint: region(fast): why\n"),
                     "bad-suppression"),
            (std::vector<int>{1}));
  EXPECT_EQ(lines_of(lint_source(k_src,
                                 "// opwat-lint: endregion(nonblocking)\n"),
                     "bad-suppression"),
            (std::vector<int>{1}));
  EXPECT_EQ(lines_of(lint_source(
                         k_src,
                         "// opwat-lint: region(nonblocking): never closed\n"
                         "void f() {}\n"),
                     "bad-suppression"),
            (std::vector<int>{1}));
}

// --- throw-in-noexcept -------------------------------------------------------

TEST(LintThrowInNoexcept, FlagsThrowInNoexceptBody) {
  const std::string text =
      "void f() noexcept {\n"                          // 1
      "  if (bad) throw std::runtime_error{\"x\"};\n"  // 2
      "}\n"
      "void ok() { throw std::runtime_error{\"y\"}; }\n"  // 4: not noexcept
      "void decl_only() noexcept;\n"                        // 5: no body
      "void defaulted() noexcept = delete;\n"               // 6
      "bool g() { return noexcept(f()); }\n";               // 7: operator form
  const auto fs = lint_source(k_src, text);
  EXPECT_EQ(lines_of(fs, "throw-in-noexcept"), (std::vector<int>{2}));
}

TEST(LintThrowInNoexcept, CtorInitListBracesDoNotHideTheBody) {
  const std::string text =
      "struct s {\n"
      "  explicit s(int v) noexcept : a_{v}, b_(v) {\n"  // 2
      "    throw v;\n"                                   // 3
      "  }\n"
      "  int a_; int b_;\n"
      "};\n";
  EXPECT_EQ(lines_of(lint_source(k_src, text), "throw-in-noexcept"),
            (std::vector<int>{3}));
}

TEST(LintThrowInNoexcept, DeclarationAfterNoexceptBodyIsNotTheBody) {
  // A noexcept function followed by an anonymous namespace (or any
  // `ident {` block) must not have that block mistaken for a ctor
  // member-initializer continuation of its body — the regression that
  // flagged serve/compress.cpp's throwing helper.
  const std::string text =
      "const char* name() noexcept {\n"  // 1
      "  return \"x\";\n"
      "}\n"
      "namespace {\n"
      "[[noreturn]] void fail() { throw 1; }\n"  // 5: not noexcept
      "}\n";
  EXPECT_EQ(lines_of(lint_source(k_src, text), "throw-in-noexcept"),
            (std::vector<int>{}));
}

TEST(LintThrowInNoexcept, FlagsThrowInNonblockingRegionAndHonorsAllow) {
  const std::string text =
      "// opwat-lint: region(nonblocking): acceptor path\n"
      "void h() {\n"
      "  throw std::runtime_error{\"no\"};\n"  // 3
      "}\n"
      "// opwat-lint: endregion(nonblocking)\n";
  EXPECT_EQ(lines_of(lint_source(k_src, text), "throw-in-noexcept"),
            (std::vector<int>{3}));

  const std::string allowed =
      "void f() noexcept {\n"
      "  throw 1;  // opwat-lint: allow(throw-in-noexcept): unreachable terminate-on-purpose path\n"
      "}\n";
  EXPECT_TRUE(lines_of(lint_source(k_src, allowed), "throw-in-noexcept").empty());
}

// --- wire-safety -------------------------------------------------------------

TEST(LintWireSafety, FlagsRawByteHandlingInNetAndPortal) {
  const std::string text =
      "void f(std::string_view b) {\n"                          // 1
      "  const auto* h = reinterpret_cast<const hdr*>(b.data());\n"  // 2
      "  memcpy(&v, b.data(), 4);\n"                            // 3
      "  const char* p = b.data() + off;\n"                     // 4
      "  auto ok = b.substr(4);\n"                              // 5: checked slice
      "  int sum = count + offset;\n"                           // 6: plain arithmetic
      "}\n";
  const auto fs = lint_source("src/opwat/portal/fixture.cpp", text);
  EXPECT_EQ(lines_of(fs, "wire-safety"), (std::vector<int>{2, 3, 4}));
}

TEST(LintWireSafety, ScopedToNetAndPortalPathSegments) {
  const std::string text = "void f() { memcpy(dst, src, n); }\n";
  EXPECT_EQ(lines_of(lint_source("src/opwat/net/t.cpp", text), "wire-safety")
                .size(),
            1u);
  EXPECT_TRUE(
      lines_of(lint_source("src/opwat/serve/t.cpp", text), "wire-safety")
          .empty());
  EXPECT_TRUE(
      lines_of(lint_source("src/opwat/infer/t.cpp", text), "wire-safety")
          .empty());
}

TEST(LintWireSafety, SuppressionWithReasonSilences) {
  const std::string text =
      "// opwat-lint: allow(wire-safety): kernel API boundary, not decoding\n"
      "bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);\n";
  EXPECT_TRUE(
      lines_of(lint_source("src/opwat/net/t.cpp", text), "wire-safety").empty());
}

// --- lock-order --------------------------------------------------------------

TEST(LintLockOrder, ExtractsNestedAcquisitionEdges) {
  const std::string text =
      "void f() {\n"
      "  std::lock_guard<std::mutex> a{mu_a};\n"     // 2
      "  {\n"
      "    const util::mutex_lock b{obj->mu_b};\n"   // 4: a -> b
      "  }\n"
      "  std::lock_guard<std::mutex> c{mu_c};\n"     // 6: a -> c (b released)
      "}\n"
      "void g() {\n"
      "  std::scoped_lock d{mu_d, mu_e};\n"          // 9: both at once, no d->e edge ordering issue
      "}\n";
  const auto es = opwat::lint::lock_edges(k_src, text);
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].held, "mu_a");
  EXPECT_EQ(es[0].acquired, "mu_b");
  EXPECT_EQ(es[0].line, 4);
  EXPECT_EQ(es[1].held, "mu_a");
  EXPECT_EQ(es[1].acquired, "mu_c");
  EXPECT_EQ(es[1].line, 6);
  // scoped_lock over two mutexes: the second is "acquired under" the
  // first within one statement (deadlock-free by std::lock, but the
  // extraction is conservative and keeps the edge).
  EXPECT_EQ(es[2].held, "mu_d");
  EXPECT_EQ(es[2].acquired, "mu_e");
}

TEST(LintLockOrder, TwoTuInversionIsFlaggedAtBothWitnesses) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/serve/a.cpp",
       "void f() {\n"
       "  const util::mutex_lock g1{mu_catalog};\n"
       "  const util::mutex_lock g2{mu_cache};\n"  // 3: catalog -> cache
       "}\n"},
      {"src/opwat/portal/b.cpp",
       "void g() {\n"
       "  const util::mutex_lock g1{mu_cache};\n"
       "  const util::mutex_lock g2{mu_catalog};\n"  // 3: cache -> catalog
       "}\n"},
  };
  const auto fs = lint_files(files);
  const auto a_hits = lines_of(fs, "lock-order");
  ASSERT_EQ(a_hits.size(), 2u);
  // One finding per witness site, each naming the other in its message.
  EXPECT_EQ(fs[0].file, "src/opwat/portal/b.cpp");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("src/opwat/serve/a.cpp:3"), std::string::npos);
  EXPECT_EQ(fs[1].file, "src/opwat/serve/a.cpp");
  EXPECT_EQ(fs[1].line, 3);
  EXPECT_NE(fs[1].message.find("src/opwat/portal/b.cpp:3"), std::string::npos);
}

TEST(LintLockOrder, ConsistentOrderAcrossTusIsClean) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/serve/a.cpp",
       "void f() { std::lock_guard<std::mutex> g1{m1};"
       " std::lock_guard<std::mutex> g2{m2}; }\n"},
      {"src/opwat/portal/b.cpp",
       "void g() { std::lock_guard<std::mutex> g1{m1};"
       " std::lock_guard<std::mutex> g2{m2}; }\n"},
  };
  EXPECT_TRUE(lines_of(lint_files(files), "lock-order").empty());
}

TEST(LintLockOrder, ThreeTuCycleNamesEveryHop) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/a.cpp", "void f() { util::mutex_lock g1{ma};"
                          " util::mutex_lock g2{mb}; }\n"},
      {"src/opwat/b.cpp", "void g() { util::mutex_lock g1{mb};"
                          " util::mutex_lock g2{mc}; }\n"},
      {"src/opwat/c.cpp", "void h() { util::mutex_lock g1{mc};"
                          " util::mutex_lock g2{ma}; }\n"},
  };
  const auto fs = lint_files(files);
  const auto hits = lines_of(fs, "lock-order");
  EXPECT_EQ(hits.size(), 3u);  // every edge of the cycle is a witness
}

TEST(LintLockOrder, SuppressedEdgeBreaksTheCycle) {
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/a.cpp",
       "void f() {\n"
       "  util::mutex_lock g1{mu_x};\n"
       "  // opwat-lint: allow(lock-order): init path, single-threaded by construction\n"
       "  util::mutex_lock g2{mu_y};\n"
       "}\n"},
      {"src/opwat/b.cpp",
       "void g() { util::mutex_lock g1{mu_y}; util::mutex_lock g2{mu_x}; }\n"},
  };
  EXPECT_TRUE(lines_of(lint_files(files), "lock-order").empty());
}

TEST(LintRuleIds, NewRulesAreRegisteredForSuppressionValidation) {
  const auto& ids = opwat::lint::rule_ids();
  for (const char* r : {"raw-lock", "blocking-in-handler", "throw-in-noexcept",
                        "wire-safety", "lock-order", "failpoint-naming"})
    EXPECT_NE(std::find(ids.begin(), ids.end(), r), ids.end()) << r;
}

// --- failpoint-naming --------------------------------------------------------

constexpr const char* k_registry_path = "src/opwat/util/failpoint_sites.hpp";
constexpr const char* k_registry_text =
    "#pragma once\n"
    "#include <array>\n"
    "inline constexpr std::array<std::string_view, 2> k_failpoint_sites{\n"
    "    \"net-send\",\n"
    "    \"store-read\",\n"
    "};\n";

TEST(LintFailpointNaming, TypoedSiteIsCaughtAcrossTus) {
  const std::vector<opwat::lint::file_input> files = {
      {k_registry_path, k_registry_text},
      {"src/opwat/net/x.cpp",
       "void f() {\n"
       "  if (OPWAT_FAILPOINT(\"net-send\")) {}\n"   // 2: registered, clean
       "  if (OPWAT_FAILPOINT(\"net-sned\")) {}\n"   // 3: typo
       "}\n"},
  };
  const auto fs = lint_files(files);
  ASSERT_EQ(lines_of(fs, "failpoint-naming"), (std::vector<int>{3}));
  const auto hit = std::find_if(fs.begin(), fs.end(), [](const finding& f) {
    return f.rule == "failpoint-naming";
  });
  EXPECT_NE(hit->message.find("net-sned"), std::string::npos);
}

TEST(LintFailpointNaming, RegistryNamesMustBeKebabAndUnique) {
  const std::vector<opwat::lint::file_input> files = {
      {k_registry_path,
       "#pragma once\n"
       "inline constexpr std::array<std::string_view, 3> k_failpoint_sites{\n"
       "    \"net-send\",\n"      // 3: fine
       "    \"Net_Send\",\n"      // 4: not kebab-case
       "    \"net-send\",\n"      // 5: duplicate
       "};\n"},
  };
  EXPECT_EQ(lines_of(lint_files(files), "failpoint-naming"),
            (std::vector<int>{4, 5}));
}

TEST(LintFailpointNaming, NonLiteralArgumentNeedsAnAllow) {
  const std::vector<opwat::lint::file_input> files = {
      {k_registry_path, k_registry_text},
      {"src/opwat/serve/x.cpp",
       "void f(const char* site) {\n"
       "  if (OPWAT_FAILPOINT(site)) {}\n"  // 2: forwarded name, no allow
       "  // opwat-lint: allow(failpoint-naming): forwarded from literal call sites\n"
       "  if (OPWAT_FAILPOINT(site)) {}\n"  // 4: same, justified
       "}\n"},
  };
  EXPECT_EQ(lines_of(lint_files(files), "failpoint-naming"),
            (std::vector<int>{2}));
}

TEST(LintFailpointNaming, WithoutTheRegistryOnlyShapeIsChecked) {
  // Partial file lists (e.g. linting one file) cannot check membership,
  // but kebab-case still holds.
  const std::vector<opwat::lint::file_input> files = {
      {"src/opwat/net/x.cpp",
       "void f() {\n"
       "  if (OPWAT_FAILPOINT(\"not-in-any-registry\")) {}\n"  // 2: clean
       "  if (OPWAT_FAILPOINT(\"Bad_Name\")) {}\n"             // 3: shape
       "}\n"},
  };
  EXPECT_EQ(lines_of(lint_files(files), "failpoint-naming"),
            (std::vector<int>{3}));
}

TEST(LintFailpointNaming, CommentsAndDefinesNeverTrigger) {
  const std::vector<opwat::lint::file_input> files = {
      {k_registry_path, k_registry_text},
      {"src/opwat/util/failpoint.hpp",
       "// usage: OPWAT_FAILPOINT(\"no-such-site\")\n"
       "#define OPWAT_FAILPOINT(site) (evaluate((site)))\n"
       "void f() { /* OPWAT_FAILPOINT(\"also-not-real\") */ }\n"},
  };
  EXPECT_TRUE(lines_of(lint_files(files), "failpoint-naming").empty());
}

}  // namespace
