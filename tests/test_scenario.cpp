// The one-call experiment scenario builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "opwat/eval/scenario.hpp"

namespace {

using namespace opwat;

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(77))};
  }
  static void TearDownTestSuite() { delete s_; }
  static eval::scenario* s_;
};

eval::scenario* ScenarioTest::s_ = nullptr;

TEST_F(ScenarioTest, AllLayersPopulated) {
  EXPECT_FALSE(s_->w.memberships.empty());
  EXPECT_GT(s_->view.interface_count(), 0u);
  EXPECT_GT(s_->prefix2as.size(), 0u);
  EXPECT_FALSE(s_->vps.empty());
  EXPECT_FALSE(s_->traces.empty());
  EXPECT_FALSE(s_->scope.empty());
  EXPECT_FALSE(s_->validation.ixps.empty());
}

TEST_F(ScenarioTest, ScopeHasUsableVps) {
  for (const auto x : s_->scope) {
    const bool has_vp = std::any_of(s_->vps.begin(), s_->vps.end(), [&](const auto& vp) {
      return vp.ixp == x && vp.alive;
    });
    EXPECT_TRUE(has_vp) << "scoped IXP " << x << " has no alive VP";
  }
}

TEST_F(ScenarioTest, ScopeSortedBySizeAndBounded) {
  EXPECT_LE(s_->scope.size(), s_->cfg.top_n_ixps);
  for (std::size_t i = 1; i < s_->scope.size(); ++i)
    EXPECT_GE(s_->ixp_size(s_->scope[i - 1]), s_->ixp_size(s_->scope[i]));
}

TEST_F(ScenarioTest, ScopeEntriesDistinct) {
  const std::set<world::ixp_id> uniq{s_->scope.begin(), s_->scope.end()};
  EXPECT_EQ(uniq.size(), s_->scope.size());
}

TEST_F(ScenarioTest, TracesReachDestinations) {
  std::size_t reached = 0;
  for (const auto& t : s_->traces)
    if (t.reached) ++reached;
  EXPECT_GT(reached, s_->traces.size() / 2);
}

TEST_F(ScenarioTest, BuildIsDeterministic) {
  const auto again = eval::scenario::build(eval::small_scenario_config(77));
  EXPECT_EQ(again.scope, s_->scope);
  EXPECT_EQ(again.traces.size(), s_->traces.size());
  EXPECT_EQ(again.view.interface_count(), s_->view.interface_count());
  EXPECT_EQ(again.validation.test.size(), s_->validation.test.size());
}

TEST_F(ScenarioTest, DifferentSeedsChangeTheWorld) {
  const auto other = eval::scenario::build(eval::small_scenario_config(78));
  EXPECT_NE(other.w.memberships.size(), 0u);
  const bool differs = other.w.memberships.size() != s_->w.memberships.size() ||
                       other.traces.size() != s_->traces.size();
  EXPECT_TRUE(differs);
}

TEST_F(ScenarioTest, TracerouteEngineBinds) {
  const auto engine = s_->make_traceroute_engine();
  EXPECT_FALSE(engine.connected_ases().empty());
}

TEST_F(ScenarioTest, DefaultConfigIsFullSize) {
  const auto cfg = eval::default_scenario_config();
  EXPECT_GE(cfg.world.n_ixps, 50u);
  EXPECT_GE(cfg.world.n_ases, 2000u);
  EXPECT_EQ(cfg.top_n_ixps, 30u);  // "the 30 largest IXPs" (§6)
}

}  // namespace
