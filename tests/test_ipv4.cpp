#include <gtest/gtest.h>

#include "opwat/net/ip_alloc.hpp"
#include "opwat/net/ipv4.hpp"

namespace {

using namespace opwat::net;

TEST(Ipv4, ParseValid) {
  const auto a = ipv4_addr::parse("192.168.1.42");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(ipv4_addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(ipv4_addr::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(ipv4_addr::parse(""));
  EXPECT_FALSE(ipv4_addr::parse("1.2.3"));
  EXPECT_FALSE(ipv4_addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(ipv4_addr::parse("256.1.1.1"));
  EXPECT_FALSE(ipv4_addr::parse("1..2.3"));
  EXPECT_FALSE(ipv4_addr::parse("a.b.c.d"));
  EXPECT_FALSE(ipv4_addr::parse("1.2.3.4 "));
}

TEST(Ipv4, OctetConstructor) {
  const ipv4_addr a{10, 0, 0, 1};
  EXPECT_EQ(a.to_string(), "10.0.0.1");
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(ipv4_addr(10, 0, 0, 1), ipv4_addr(10, 0, 0, 2));
  EXPECT_LT(ipv4_addr(9, 255, 255, 255), ipv4_addr(10, 0, 0, 0));
}

TEST(Prefix, NormalizesNetworkAddress) {
  const prefix p{ipv4_addr{192, 168, 1, 200}, 24};
  EXPECT_EQ(p.network().to_string(), "192.168.1.0");
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
}

TEST(Prefix, ContainsAddresses) {
  const prefix p{ipv4_addr{10, 1, 0, 0}, 16};
  EXPECT_TRUE(p.contains(ipv4_addr{10, 1, 255, 255}));
  EXPECT_FALSE(p.contains(ipv4_addr{10, 2, 0, 0}));
}

TEST(Prefix, ContainsSubPrefix) {
  const prefix big{ipv4_addr{10, 0, 0, 0}, 8};
  const prefix small{ipv4_addr{10, 3, 0, 0}, 24};
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
}

TEST(Prefix, SizeAndAt) {
  const prefix p{ipv4_addr{192, 0, 2, 0}, 24};
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0).to_string(), "192.0.2.0");
  EXPECT_EQ(p.at(255).to_string(), "192.0.2.255");
  EXPECT_THROW((void)p.at(256), std::out_of_range);
}

TEST(Prefix, ParseCidr) {
  const auto p = prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 12);
  EXPECT_FALSE(prefix::parse("172.16.0.0"));
  EXPECT_FALSE(prefix::parse("172.16.0.0/33"));
  EXPECT_FALSE(prefix::parse("bad/8"));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const prefix p{ipv4_addr{1, 2, 3, 4}, 0};
  EXPECT_TRUE(p.contains(ipv4_addr{255, 255, 255, 255}));
  EXPECT_TRUE(p.contains(ipv4_addr{0, 0, 0, 0}));
}

TEST(Prefix, InvalidLengthThrows) {
  EXPECT_THROW((prefix{ipv4_addr{}, 33}), std::invalid_argument);
  EXPECT_THROW((prefix{ipv4_addr{}, -1}), std::invalid_argument);
}

TEST(Lpm, LongestMatchWins) {
  lpm_table<int> t;
  t.insert(prefix{ipv4_addr{10, 0, 0, 0}, 8}, 1);
  t.insert(prefix{ipv4_addr{10, 1, 0, 0}, 16}, 2);
  t.insert(prefix{ipv4_addr{10, 1, 2, 0}, 24}, 3);
  EXPECT_EQ(t.lookup(ipv4_addr(10, 1, 2, 3)), 3);
  EXPECT_EQ(t.lookup(ipv4_addr(10, 1, 9, 9)), 2);
  EXPECT_EQ(t.lookup(ipv4_addr(10, 9, 9, 9)), 1);
  EXPECT_FALSE(t.lookup(ipv4_addr(11, 0, 0, 0)));
}

TEST(Lpm, ExactLookup) {
  lpm_table<int> t;
  const prefix p{ipv4_addr{10, 0, 0, 0}, 8};
  t.insert(p, 7);
  EXPECT_EQ(t.exact(p), 7);
  EXPECT_FALSE(t.exact(prefix{ipv4_addr{10, 0, 0, 0}, 9}));
}

TEST(Lpm, OverwriteSamePrefix) {
  lpm_table<int> t;
  t.insert(prefix{ipv4_addr{10, 0, 0, 0}, 8}, 1);
  t.insert(prefix{ipv4_addr{10, 0, 0, 0}, 8}, 2);
  EXPECT_EQ(t.lookup(ipv4_addr(10, 0, 0, 1)), 2);
}

TEST(Lpm, DefaultRoute) {
  lpm_table<int> t;
  t.insert(prefix{ipv4_addr{0, 0, 0, 0}, 0}, 99);
  EXPECT_EQ(t.lookup(ipv4_addr(8, 8, 8, 8)), 99);
}

TEST(Allocator, NonOverlappingSequential) {
  prefix_allocator alloc{prefix{ipv4_addr{10, 0, 0, 0}, 8}};
  const auto a = alloc.allocate(24);
  const auto b = alloc.allocate(24);
  const auto c = alloc.allocate(20);
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(c));
  EXPECT_FALSE(c.contains(a));
  EXPECT_TRUE(prefix(ipv4_addr{10, 0, 0, 0}, 8).contains(c));
}

TEST(Allocator, AlignmentRespected) {
  prefix_allocator alloc{prefix{ipv4_addr{10, 0, 0, 0}, 8}};
  (void)alloc.allocate(24);      // 10.0.0.0/24
  const auto p = alloc.allocate(16);  // must align to /16
  EXPECT_EQ(p.network().value() % p.size(), 0u);
}

TEST(Allocator, ExhaustionThrows) {
  prefix_allocator alloc{prefix{ipv4_addr{192, 0, 2, 0}, 24}};
  (void)alloc.allocate(25);
  (void)alloc.allocate(25);
  EXPECT_THROW((void)alloc.allocate(25), std::length_error);
}

TEST(Allocator, RequestOutsidePoolThrows) {
  prefix_allocator alloc{prefix{ipv4_addr{10, 0, 0, 0}, 16}};
  EXPECT_THROW((void)alloc.allocate(8), std::invalid_argument);
}

TEST(Asn, Formatting) {
  EXPECT_EQ(to_string(asn{65000}), "AS65000");
  EXPECT_EQ(asn{1}, asn{1});
  EXPECT_LT(asn{1}, asn{2});
}

// Property: parse(to_string(a)) == a across a spread of addresses.
class Ipv4Roundtrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Ipv4Roundtrip, Roundtrips) {
  const ipv4_addr a{GetParam()};
  const auto parsed = ipv4_addr::parse(a.to_string());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, a);
}

INSTANTIATE_TEST_SUITE_P(Addresses, Ipv4Roundtrip,
                         ::testing::Values(0u, 1u, 0xffffffffu, 0x0a000001u,
                                           0xc0a80101u, 0x7f000001u, 0xac100001u,
                                           0xdeadbeefu));

}  // namespace
