#include <gtest/gtest.h>

#include <cmath>

#include "opwat/geo/metro.hpp"
#include "opwat/world/cities.hpp"

namespace {

using namespace opwat::geo;
using opwat::world::find_city;

geo_point near(const geo_point& p, double km, double bearing = 90.0) {
  return offset_km(p, bearing, km);
}

TEST(Metro, SameMetroWithin50km) {
  const geo_point ams = find_city("Amsterdam")->location;
  EXPECT_TRUE(same_metro(ams, near(ams, 10.0)));
  EXPECT_TRUE(same_metro(ams, near(ams, 49.0)));
  EXPECT_FALSE(same_metro(ams, near(ams, 60.0)));
}

TEST(Metro, AmsterdamRotterdamAreDistinct) {
  // The paper's Rotterdam example: ~57 km from Amsterdam -> remote despite
  // low RTT.
  const geo_point ams = find_city("Amsterdam")->location;
  const geo_point rot = find_city("Rotterdam")->location;
  EXPECT_FALSE(same_metro(ams, rot));
}

TEST(Metro, MaxPairwiseDistance) {
  const geo_point a{50, 8};
  const std::vector<geo_point> pts{a, near(a, 10), near(a, 30)};
  EXPECT_NEAR(max_pairwise_distance_km(pts), 30.0, 1.0);
  EXPECT_DOUBLE_EQ(max_pairwise_distance_km(std::vector<geo_point>{a}), 0.0);
  EXPECT_DOUBLE_EQ(max_pairwise_distance_km({}), 0.0);
}

TEST(Metro, MinMaxDistanceBetweenSets) {
  const geo_point a{50, 8};
  const std::vector<geo_point> s1{a, near(a, 5)};
  const std::vector<geo_point> s2{near(a, 100), near(a, 200)};
  EXPECT_NEAR(min_distance_km(s1, s2), 95.0, 2.0);
  EXPECT_NEAR(max_distance_km(s1, s2), 200.0, 2.0);
  EXPECT_TRUE(std::isinf(min_distance_km(s1, {})));
  EXPECT_DOUBLE_EQ(max_distance_km({}, s2), 0.0);
}

TEST(Metro, WideAreaDetection) {
  const geo_point fra = find_city("Frankfurt")->location;
  // Single-metro IXP: all facilities within the city.
  const std::vector<geo_point> metro_ixp{fra, near(fra, 8), near(fra, 20)};
  EXPECT_FALSE(is_wide_area(metro_ixp));
  // NET-IX-style continental footprint.
  const std::vector<geo_point> wide{fra, find_city("Sofia")->location};
  EXPECT_TRUE(is_wide_area(wide));
  EXPECT_FALSE(is_wide_area({}));
  EXPECT_FALSE(is_wide_area(std::vector<geo_point>{fra}));
}

TEST(Metro, ClustersGroupNearbyPoints) {
  const geo_point fra = find_city("Frankfurt")->location;
  const geo_point lon = find_city("London")->location;
  const std::vector<geo_point> pts{fra, near(fra, 5), lon, near(lon, 12), near(fra, 30)};
  const auto clusters = metro_clusters(pts);
  ASSERT_EQ(clusters.size(), 5u);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[0], clusters[4]);
  EXPECT_EQ(clusters[2], clusters[3]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(Metro, ClusterIdsAreCompactAndFirstSeen) {
  const geo_point a{10, 10};
  const geo_point b{40, 40};
  const auto clusters = metro_clusters(std::vector<geo_point>{a, b, a});
  EXPECT_EQ(clusters[0], 0u);
  EXPECT_EQ(clusters[1], 1u);
  EXPECT_EQ(clusters[2], 0u);
}

// Property: wide-area iff max pairwise distance exceeds the threshold.
class WideAreaConsistency : public ::testing::TestWithParam<double> {};

TEST_P(WideAreaConsistency, MatchesPairwiseDistance) {
  const geo_point base{48.0, 11.0};
  const std::vector<geo_point> pts{base, near(base, GetParam())};
  EXPECT_EQ(is_wide_area(pts),
            max_pairwise_distance_km(pts) > kMetroSeparationKm);
}

INSTANTIATE_TEST_SUITE_P(Spans, WideAreaConsistency,
                         ::testing::Values(1.0, 25.0, 49.0, 51.0, 80.0, 500.0));

}  // namespace
