// The §8 "Beyond Pings" extension: traceroute-derived RTT observations.
#include <gtest/gtest.h>

#include <cmath>

#include "opwat/eval/metrics.hpp"
#include "opwat/eval/scenario.hpp"
#include "opwat/infer/step2b_traceroute_rtt.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using infer::peering_class;

class BeyondPingsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(61))};
    pr_ = new infer::pipeline_result{s_->run_inference()};
  }
  static void TearDownTestSuite() {
    delete pr_;
    delete s_;
  }
  static eval::scenario* s_;
  static infer::pipeline_result* pr_;
};

eval::scenario* BeyondPingsTest::s_ = nullptr;
infer::pipeline_result* BeyondPingsTest::pr_ = nullptr;

TEST_F(BeyondPingsTest, DerivesObservationsFromCrossings) {
  const auto result =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, pr_->inferences, {});
  EXPECT_GT(result.crossings_seen, 0u);
  EXPECT_GT(result.crossings_used, 0u);
  EXPECT_LE(result.crossings_used, result.crossings_seen);
  EXPECT_FALSE(result.observations.empty());
  EXPECT_FALSE(result.virtual_vps.empty());
}

TEST_F(BeyondPingsTest, ObservationsAreWellFormed) {
  const auto result =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, pr_->inferences, {});
  for (const auto& [key, obs] : result.observations) {
    EXPECT_LE(obs.size(), infer::traceroute_rtt_config{}.max_observations_per_iface);
    for (const auto& o : obs) {
      EXPECT_LT(o.vp_index, result.virtual_vps.size());
      EXPECT_GE(o.rtt_min_ms, 0.0);
      EXPECT_FALSE(o.rounded);
      // The virtual VP belongs to the interface's IXP.
      EXPECT_EQ(result.virtual_vps[o.vp_index].ixp, key.ixp);
    }
    // Sorted ascending (minimum filtering).
    for (std::size_t i = 1; i < obs.size(); ++i)
      EXPECT_GE(obs[i].rtt_min_ms, obs[i - 1].rtt_min_ms);
  }
}

TEST_F(BeyondPingsTest, VirtualVpsSitAtIxpFacilities) {
  const auto result =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, pr_->inferences, {});
  for (const auto& vp : result.virtual_vps) {
    const auto& facs = s_->view.facilities_of_ixp(vp.ixp);
    EXPECT_NE(std::find(facs.begin(), facs.end(), vp.facility), facs.end());
    EXPECT_FALSE(vp.in_peering_lan);
    EXPECT_TRUE(vp.alive);
  }
}

TEST_F(BeyondPingsTest, PingFreeVariantProducesMore) {
  infer::traceroute_rtt_config loose;
  loose.require_local_near = false;
  const infer::inference_map empty;
  const auto strict =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, pr_->inferences, {});
  const auto free_form = infer::derive_traceroute_rtts(s_->view, pr_->paths, empty, loose);
  // Without ping-based anchors nothing passes the strict gate...
  const auto strict_no_prior =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, empty, {});
  EXPECT_EQ(strict_no_prior.crossings_used, 0u);
  // ...while the colocation-anchored variant still works.
  EXPECT_GT(free_form.crossings_used, 0u);
  (void)strict;
}

TEST_F(BeyondPingsTest, PipelineFlagAddsCoverage) {
  auto cfg = s_->cfg.pipeline;
  cfg.use_traceroute_rtt = true;
  const auto augmented = s_->run_inference(cfg);
  // The extension can only add decisions (it annotates extra interfaces,
  // so raw unknown-entry counts are not comparable).
  const auto decided = [](const infer::pipeline_result& pr) {
    return pr.inferences.count(peering_class::local) +
           pr.inferences.count(peering_class::remote);
  };
  EXPECT_GE(decided(augmented), decided(*pr_));
  // Provenance recorded under the extension's own label.
  bool found = false;
  for (const auto& [key, inf] : augmented.inferences.items())
    if (inf.step == method_step::traceroute_rtt) found = true;
  EXPECT_EQ(found, augmented.s2b.decided_local + augmented.s2b.decided_remote > 0);
}

TEST_F(BeyondPingsTest, AugmentedPipelineKeepsAccuracy) {
  auto cfg = s_->cfg.pipeline;
  cfg.use_traceroute_rtt = true;
  const auto augmented = s_->run_inference(cfg);
  const auto base_m = eval::compute_metrics(pr_->inferences, s_->validation.test);
  const auto aug_m = eval::compute_metrics(augmented.inferences, s_->validation.test);
  EXPECT_GE(aug_m.cov + 1e-9, base_m.cov);
  EXPECT_GT(aug_m.acc, 0.75);
}

TEST_F(BeyondPingsTest, DeltaApproximatesMemberToIxpRtt) {
  // For crossings whose near member is local with a known facility, the
  // delta must be close to the far member's true RTT to that facility.
  const auto result =
      infer::derive_traceroute_rtts(s_->view, pr_->paths, pr_->inferences, {});
  std::size_t checked = 0, close = 0;
  for (const auto& [key, obs] : result.observations) {
    const auto rid = s_->w.router_by_interface(key.ip);
    if (!rid || obs.empty()) continue;
    const auto& vp = result.virtual_vps[obs.front().vp_index];
    const auto truth = s_->lat.base_rtt_ms(
        vp.point(), measure::latency_model::point_of_router(s_->w, *rid));
    ++checked;
    // Within jitter noise + path asymmetry tolerance.
    if (std::abs(obs.front().rtt_min_ms - truth) < std::max(2.0, truth * 0.5)) ++close;
  }
  ASSERT_GT(checked, 0u);
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(checked), 0.6);
}

}  // namespace
