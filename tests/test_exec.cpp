// The vectorized query execution engine (opwat/serve/exec.hpp) pinned
// against the retained row-at-a-time reference evaluator
// (exec::mode::reference) — the byte-identity oracle:
//   - randomized property suite: every filter combination x group-by x
//     sort x pagination across seeds and scales returns identical
//     results on both engines;
//   - edge cases: empty match, all-NaN-RTT selections, single-row
//     member runs, IXPs absent from an epoch (multi-scope catalogs);
//   - zone maps and permutation indexes stay correct after save→load
//     and merge_from (rebuilt from columns, never serialized);
//   - diff_epochs (sort-merge join) == diff_epochs_reference (ordered
//     containers), including the O(1) appeared_of counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "opwat/eval/scenario.hpp"
#include "opwat/serve/query.hpp"

namespace {

using namespace opwat;
using infer::method_step;
using infer::peering_class;

// ---------------------------------------------------------------------------
// Result comparison helpers.  Rows compare every materialized field;
// metros compare by display name so the helpers also work across
// catalogs with remapped dictionary refs (merge_from).

void expect_row_eq(const serve::catalog& ca, const serve::iface_row& a,
                   const serve::catalog& cb, const serve::iface_row& b,
                   const std::string& ctx) {
  EXPECT_EQ(a.ip, b.ip) << ctx;
  EXPECT_EQ(a.ixp, b.ixp) << ctx;
  EXPECT_EQ(a.asn.value, b.asn.value) << ctx;
  EXPECT_EQ(a.cls, b.cls) << ctx;
  EXPECT_EQ(a.step, b.step) << ctx;
  if (std::isnan(a.rtt_min_ms))
    EXPECT_TRUE(std::isnan(b.rtt_min_ms)) << ctx;
  else
    EXPECT_EQ(a.rtt_min_ms, b.rtt_min_ms) << ctx;
  EXPECT_EQ(a.feasible_facilities, b.feasible_facilities) << ctx;
  if (std::isnan(a.port_gbps))
    EXPECT_TRUE(std::isnan(b.port_gbps)) << ctx;
  else
    EXPECT_EQ(a.port_gbps, b.port_gbps) << ctx;
  EXPECT_EQ(ca.metro_name(a.metro), cb.metro_name(b.metro)) << ctx;
}

void expect_rows_eq(const serve::catalog& ca, const std::vector<serve::iface_row>& a,
                    const serve::catalog& cb, const std::vector<serve::iface_row>& b,
                    const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_row_eq(ca, a[i], cb, b[i], ctx + " row " + std::to_string(i));
}

void expect_groups_eq(const std::vector<serve::group_count>& a,
                      const std::vector<serve::group_count>& b,
                      const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << ctx << " group " << i;
    EXPECT_EQ(a[i].count, b[i].count) << ctx << " group " << i;
  }
}

void expect_ecdf_eq(const std::vector<serve::ecdf_point>& a,
                    const std::vector<serve::ecdf_point>& b, const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].upper_ms, b[i].upper_ms) << ctx;
    EXPECT_EQ(a[i].cum_count, b[i].cum_count) << ctx;
    EXPECT_EQ(a[i].fraction, b[i].fraction) << ctx;
  }
}

// ---------------------------------------------------------------------------
// Randomized query specs.

struct query_spec {
  std::string epoch;
  std::optional<std::string> ixp_name;
  std::optional<net::asn> member;
  std::optional<std::string> metro;
  std::optional<peering_class> cls;
  std::optional<method_step> step;
  std::optional<std::pair<double, double>> rtt;
  int group = -1;  ///< -1 none, else 0..4 = ixp/asn/metro/class/step
  bool sort = false;
  bool asc = true;
  int page_kind = 0;  ///< 0 none, 1 top(k), 2 page(o, l)
  std::size_t k = 0, off = 0, lim = 0;

  [[nodiscard]] std::string describe() const {
    std::string s = "epoch=" + epoch;
    if (ixp_name) s += " ixp=" + *ixp_name;
    if (member) s += " asn=" + std::to_string(member->value);
    if (metro) s += " metro=" + *metro;
    if (cls) s += " cls=" + std::string{to_string(*cls)};
    if (step) s += " step=" + std::string{to_string(*step)};
    if (rtt) s += " rtt=[" + std::to_string(rtt->first) + "," +
                  std::to_string(rtt->second) + "]";
    if (group >= 0) s += " group=" + std::to_string(group);
    if (sort) s += asc ? " sort_asc" : " sort_desc";
    if (page_kind == 1) s += " top(" + std::to_string(k) + ")";
    if (page_kind == 2)
      s += " page(" + std::to_string(off) + "," + std::to_string(lim) + ")";
    return s;
  }
};

serve::query build_query(const serve::catalog& cat, const query_spec& sp,
                         serve::exec::mode m) {
  auto q = serve::query{cat}.engine(m).epoch(sp.epoch);
  if (sp.ixp_name) q.at_ixp(*sp.ixp_name);
  if (sp.member) q.member(*sp.member);
  if (sp.metro) q.metro(*sp.metro);
  if (sp.cls) q.cls(*sp.cls);
  if (sp.step) q.step(*sp.step);
  if (sp.rtt) q.rtt_between(sp.rtt->first, sp.rtt->second);
  switch (sp.group) {
    case 0: q.by_ixp(); break;
    case 1: q.by_asn(); break;
    case 2: q.by_metro(); break;
    case 3: q.by_class(); break;
    case 4: q.by_step(); break;
    default: break;
  }
  if (sp.sort) q.sort_by_rtt(sp.asc);
  if (sp.page_kind == 1) q.top(sp.k);
  if (sp.page_kind == 2) q.page(sp.off, sp.lim);
  return q;
}

query_spec random_spec(std::mt19937& rng, const serve::catalog& cat) {
  const auto labels = cat.labels();
  const auto pick = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>{0, n - 1}(rng);
  };
  const auto chance = [&](double p) {
    return std::uniform_real_distribution<double>{0.0, 1.0}(rng) < p;
  };

  query_spec sp;
  sp.epoch = labels[pick(labels.size())];
  const auto& ep = cat.of(sp.epoch);

  // IXP filter from the full dictionary, so epochs with a narrower
  // scope see IXPs that exist in the catalog but not in the epoch.
  if (chance(0.4)) sp.ixp_name = cat.ixps()[pick(cat.ixps().size())].name;
  if (chance(0.35)) {
    // Mostly a real ASN of this epoch; sometimes one no row carries.
    if (chance(0.85) && ep.rows() > 0)
      sp.member = net::asn{ep.asn_col()[pick(ep.rows())]};
    else
      sp.member = net::asn{0xFFFFFFFEu};
  }
  if (chance(0.3) && !cat.metros().empty())
    sp.metro = cat.metros()[pick(cat.metros().size())];
  if (chance(0.4))
    sp.cls = static_cast<peering_class>(pick(infer::k_n_peering_classes));
  if (chance(0.3))
    sp.step = static_cast<method_step>(pick(infer::k_n_method_steps));
  if (chance(0.35)) {
    if (chance(0.15)) {
      sp.rtt = {{-5.0, -1.0}};  // provably empty band
    } else {
      const double lo = std::uniform_real_distribution<double>{0.0, 30.0}(rng);
      const double width = std::uniform_real_distribution<double>{0.0, 40.0}(rng);
      sp.rtt = {{lo, lo + width}};
    }
  }
  if (chance(0.45)) sp.group = static_cast<int>(pick(5));
  sp.sort = chance(0.45);
  sp.asc = chance(0.5);
  const double page_roll = std::uniform_real_distribution<double>{0.0, 1.0}(rng);
  if (page_roll < 0.3) {
    sp.page_kind = 1;
    sp.k = pick(40);  // includes top(0)
  } else if (page_roll < 0.6) {
    sp.page_kind = 2;
    sp.off = pick(ep.rows() + 10);
    sp.lim = pick(60);
  }
  return sp;
}

/// Runs one spec on both engines (and optionally on a second catalog,
/// e.g. a loaded or merged copy) and expects identical results.
void expect_spec_equivalent(const serve::catalog& ref_cat, const serve::catalog& vec_cat,
                            const query_spec& sp) {
  const auto ctx = sp.describe();
  auto ref = build_query(ref_cat, sp, serve::exec::mode::reference);
  auto vec = build_query(vec_cat, sp, serve::exec::mode::vectorized);

  EXPECT_EQ(ref.count(), vec.count()) << ctx;
  expect_rows_eq(ref_cat, ref.rows(), vec_cat, vec.rows(), ctx);
  if (sp.group >= 0) expect_groups_eq(ref.group_counts(), vec.group_counts(), ctx);
  expect_ecdf_eq(ref.rtt_ecdf(5), vec.rtt_ecdf(5), ctx);
}

/// Runs one spec morsel-parallel and expects byte-identity with BOTH
/// the serial vectorized engine and the reference evaluator.  Morsels
/// are forced tiny (64 rows) so even the small test epochs split into
/// dozens of shards, and a nonzero shuffle seed processes them out of
/// canonical order — the merge must restore it exactly.
void expect_spec_parallel_identical(const serve::catalog& cat, const query_spec& sp,
                                    std::size_t threads,
                                    std::uint64_t shuffle_seed) {
  const auto ctx = sp.describe() + " threads=" + std::to_string(threads) +
                   " shuffle=" + std::to_string(shuffle_seed);
  auto ref = build_query(cat, sp, serve::exec::mode::reference);
  auto ser = build_query(cat, sp, serve::exec::mode::vectorized);
  auto par = build_query(cat, sp, serve::exec::mode::vectorized);
  par.threads(threads).morsel_rows(64).shuffle_morsels(shuffle_seed);

  const auto n = par.count();
  EXPECT_EQ(ser.count(), n) << ctx;
  EXPECT_EQ(ref.count(), n) << ctx;
  expect_rows_eq(cat, ser.rows(), cat, par.rows(), ctx);
  expect_rows_eq(cat, ref.rows(), cat, par.rows(), ctx);
  if (sp.group >= 0) {
    expect_groups_eq(ser.group_counts(), par.group_counts(), ctx);
    expect_groups_eq(ref.group_counts(), par.group_counts(), ctx);
  }
  expect_ecdf_eq(ser.rtt_ecdf(5), par.rtt_ecdf(5), ctx);
}

// ---------------------------------------------------------------------------
// Zone-map / permutation-index structural invariants, recomputed
// linearly from the columns.

void expect_indexes_valid(const serve::catalog& cat) {
  // First the library's own deep audit, then the independent linear
  // recomputation below — the two must agree that the catalog is sound.
  EXPECT_NO_THROW(cat.audit());
  for (std::size_t e = 0; e < cat.epoch_count(); ++e) {
    const auto& ep = cat.at(static_cast<serve::epoch_id>(e));
    for (const auto& b : ep.blocks()) {
      serve::epoch::block::zone_map z;
      for (std::size_t i = b.begin; i < b.end; ++i) {
        z.asn_min = std::min(z.asn_min, ep.asn_col()[i]);
        z.asn_max = std::max(z.asn_max, ep.asn_col()[i]);
        z.cls_mask |= static_cast<std::uint8_t>(1u << ep.cls_col()[i]);
        if (ep.cls_col()[i] != static_cast<std::uint8_t>(peering_class::unknown))
          z.step_mask |= static_cast<std::uint8_t>(1u << ep.step_col()[i]);
        const double r = ep.rtt_col()[i];
        if (!std::isnan(r)) {
          z.any_measured_rtt = true;
          z.rtt_min_ms = std::min(z.rtt_min_ms, r);
          z.rtt_max_ms = std::max(z.rtt_max_ms, r);
        }
      }
      EXPECT_EQ(b.zone.asn_min, z.asn_min);
      EXPECT_EQ(b.zone.asn_max, z.asn_max);
      EXPECT_EQ(b.zone.cls_mask, z.cls_mask);
      EXPECT_EQ(b.zone.step_mask, z.step_mask);
      EXPECT_EQ(b.zone.any_measured_rtt, z.any_measured_rtt);
      if (z.any_measured_rtt) {
        EXPECT_EQ(b.zone.rtt_min_ms, z.rtt_min_ms);
        EXPECT_EQ(b.zone.rtt_max_ms, z.rtt_max_ms);
      }
      // Metro bitset: membership agrees with a linear scan, for every
      // metro in the dictionary and for unmapped rows.
      std::set<serve::metro_ref> present;
      bool unmapped = false;
      for (std::size_t i = b.begin; i < b.end; ++i) {
        if (ep.metro_col()[i] == serve::k_no_metro)
          unmapped = true;
        else
          present.insert(ep.metro_col()[i]);
      }
      EXPECT_EQ(b.zone.any_unmapped_metro, unmapped);
      for (serve::metro_ref m = 0; m < cat.metros().size(); ++m)
        EXPECT_EQ(b.zone.metro_present(m), present.contains(m)) << "metro " << m;
    }

    // asn_perm: a permutation of [0, rows) sorted by (asn, index).
    ASSERT_EQ(ep.asn_perm().size(), ep.rows());
    std::vector<bool> seen(ep.rows(), false);
    for (const auto r : ep.asn_perm()) {
      ASSERT_LT(r, ep.rows());
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
    for (std::size_t i = 1; i < ep.asn_perm().size(); ++i) {
      const auto a = ep.asn_perm()[i - 1], b = ep.asn_perm()[i];
      EXPECT_TRUE(ep.asn_col()[a] < ep.asn_col()[b] ||
                  (ep.asn_col()[a] == ep.asn_col()[b] && a < b));
    }
    // ip_perm: per block, a permutation of the block's row range sorted
    // by (ip, index).
    ASSERT_EQ(ep.ip_perm().size(), ep.rows());
    for (const auto& b : ep.blocks()) {
      for (std::size_t i = b.begin; i < b.end; ++i) {
        ASSERT_GE(ep.ip_perm()[i], b.begin);
        ASSERT_LT(ep.ip_perm()[i], b.end);
      }
      for (std::size_t i = b.begin + 1; i < b.end; ++i) {
        const auto x = ep.ip_perm()[i - 1], y = ep.ip_perm()[i];
        EXPECT_TRUE(ep.ip_col()[x] < ep.ip_col()[y] ||
                    (ep.ip_col()[x] == ep.ip_col()[y] && x < y));
      }
    }
  }
}

void expect_diffs_eq(const serve::catalog& cat, const serve::epoch_diff& a,
                     const serve::epoch_diff& b) {
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.to, b.to);
  expect_rows_eq(cat, a.appeared, cat, b.appeared, "appeared");
  expect_rows_eq(cat, a.disappeared, cat, b.disappeared, "disappeared");
  ASSERT_EQ(a.reclassified.size(), b.reclassified.size());
  for (std::size_t i = 0; i < a.reclassified.size(); ++i) {
    expect_row_eq(cat, a.reclassified[i].before, cat, b.reclassified[i].before,
                  "reclassified.before " + std::to_string(i));
    expect_row_eq(cat, a.reclassified[i].after, cat, b.reclassified[i].after,
                  "reclassified.after " + std::to_string(i));
  }
  EXPECT_EQ(a.appeared_by_class, b.appeared_by_class);
}

// ---------------------------------------------------------------------------
// Fixture: a three-epoch catalog — two full-scope runs plus one with a
// truncated scope, so some dictionary IXPs are absent from epoch "C"
// and cross-epoch diffs have real appeared/disappeared work.

class ExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    s_ = new eval::scenario{eval::scenario::build(eval::small_scenario_config(91))};
    cat_ = new serve::catalog;
    const auto pr_a = s_->run_inference();
    cat_->ingest(s_->w, s_->view, pr_a, "A");
    auto cfg = s_->cfg.pipeline;
    cfg.seed ^= 0x9e3779b97f4a7c15ull;
    auto pr_b = s_->run_inference(cfg);
    cat_->ingest(s_->w, s_->view, pr_b, "B");
    // Epoch "C": same run, half the IXP scope.
    pr_b.scope.resize(pr_b.scope.size() / 2);
    cat_->ingest(s_->w, s_->view, pr_b, "C");
    // Epoch "N": an empty pipeline result — every row unknown with an
    // unmeasured (NaN) RTT, the all-NaN edge case.
    infer::pipeline_result pr_n;
    pr_n.scope = s_->scope;
    cat_->ingest(s_->w, s_->view, pr_n, "N");
  }
  static void TearDownTestSuite() {
    delete cat_;
    delete s_;
    cat_ = nullptr;
    s_ = nullptr;
  }

  static eval::scenario* s_;
  static serve::catalog* cat_;
};

eval::scenario* ExecTest::s_ = nullptr;
serve::catalog* ExecTest::cat_ = nullptr;

// ---------------------------------------------------------------------------

TEST_F(ExecTest, IndexesMatchLinearRecomputation) { expect_indexes_valid(*cat_); }

TEST_F(ExecTest, RandomizedSpecsMatchReference) {
  std::mt19937 rng{20180427};
  for (int c = 0; c < 400; ++c) {
    const auto sp = random_spec(rng, *cat_);
    expect_spec_equivalent(*cat_, *cat_, sp);
    if (::testing::Test::HasFailure()) FAIL() << "spec " << c << ": " << sp.describe();
  }
}

TEST_F(ExecTest, RandomizedSpecsMatchReferenceOnSecondScale) {
  // Different seed AND different scale (narrower scope, so blocks,
  // dictionaries and RTT distributions all differ).
  auto cfg = eval::small_scenario_config(17);
  cfg.top_n_ixps = 4;
  const auto s = eval::scenario::build(cfg);
  serve::catalog cat;
  cat.ingest(s.w, s.view, s.run_inference(), "A");
  auto pcfg = s.cfg.pipeline;
  pcfg.seed += 3;
  cat.ingest(s.w, s.view, s.run_inference(pcfg), "B");
  expect_indexes_valid(cat);
  std::mt19937 rng{7};
  for (int c = 0; c < 250; ++c) {
    const auto sp = random_spec(rng, cat);
    expect_spec_equivalent(cat, cat, sp);
    if (::testing::Test::HasFailure()) FAIL() << "spec " << c << ": " << sp.describe();
  }
}

// Re-runs the full randomized suite morsel-parallel: every spec under
// threads {1, 2, 8} with a shuffled morsel processing order, pinned
// byte-identical to the serial vectorized engine AND the reference
// evaluator.  Rides the TSan ctest lane like every other test here, so
// the shard merge is also proven race-free.
TEST_F(ExecTest, RandomizedSpecsByteIdenticalUnderMorselParallelism) {
  std::mt19937 rng{20180427};
  std::uint64_t shuffle = 0;
  for (int c = 0; c < 400; ++c) {
    const auto sp = random_spec(rng, *cat_);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      expect_spec_parallel_identical(*cat_, sp, threads, ++shuffle);
      if (::testing::Test::HasFailure())
        FAIL() << "spec " << c << " threads=" << threads << ": " << sp.describe();
    }
  }
}

TEST_F(ExecTest, MorselParallelismOnSecondScale) {
  auto cfg = eval::small_scenario_config(17);
  cfg.top_n_ixps = 4;
  const auto s = eval::scenario::build(cfg);
  serve::catalog cat;
  cat.ingest(s.w, s.view, s.run_inference(), "A");
  auto pcfg = s.cfg.pipeline;
  pcfg.seed += 3;
  cat.ingest(s.w, s.view, s.run_inference(pcfg), "B");
  std::mt19937 rng{7};
  std::uint64_t shuffle = 1000;
  for (int c = 0; c < 120; ++c) {
    const auto sp = random_spec(rng, cat);
    for (const std::size_t threads : {2u, 8u}) {
      expect_spec_parallel_identical(cat, sp, threads, ++shuffle);
      if (::testing::Test::HasFailure())
        FAIL() << "spec " << c << " threads=" << threads << ": " << sp.describe();
    }
  }
}

TEST_F(ExecTest, ParallelScanStatsAccountForEveryRow) {
  const auto& ep = cat_->of("A");

  // The parallel accounting invariant matches the serial one — zone
  // pruning happens at plan time with identical block decisions — and
  // the morsel counter is the only new field.
  serve::exec::stats st;
  (void)serve::query{*cat_}
      .epoch("A")
      .cls(peering_class::remote)
      .rtt_between(0.0, 1.0)
      .threads(2)
      .morsel_rows(64)
      .collect_stats(&st)
      .count();
  EXPECT_EQ(st.rows_scanned + st.rows_skipped, ep.rows());
  EXPECT_GT(st.morsels, 0u);

  serve::exec::stats ser;
  (void)serve::query{*cat_}
      .epoch("A")
      .cls(peering_class::remote)
      .rtt_between(0.0, 1.0)
      .collect_stats(&ser)
      .count();
  EXPECT_EQ(ser.rows_scanned, st.rows_scanned);
  EXPECT_EQ(ser.rows_skipped, st.rows_skipped);
  EXPECT_EQ(ser.blocks_skipped, st.blocks_skipped);
  EXPECT_EQ(ser.morsels, 0u);

  // A provably-empty RTT band prunes every block at plan time: zero
  // morsels run, and the accounting still covers the epoch.
  serve::exec::stats est;
  (void)serve::query{*cat_}
      .epoch("A")
      .rtt_between(-5.0, -1.0)
      .threads(8)
      .collect_stats(&est)
      .count();
  EXPECT_EQ(est.rows_scanned, 0u);
  EXPECT_EQ(est.rows_skipped, ep.rows());
  EXPECT_EQ(est.blocks_skipped, ep.blocks().size());
  EXPECT_EQ(est.morsels, 0u);
}

TEST_F(ExecTest, AbsentIxpYieldsEmptyOnBothEngines) {
  // Every IXP dropped from epoch "C"'s scope exists in the dictionary
  // but has no block there.
  const auto& ep_c = cat_->of("C");
  bool exercised = false;
  for (const auto& entry : cat_->ixps()) {
    const auto ref = cat_->ixp_by_name(entry.name);
    ASSERT_TRUE(ref.has_value());
    if (ep_c.block_of(*ref) != nullptr) continue;
    exercised = true;
    for (const auto m : {serve::exec::mode::vectorized, serve::exec::mode::reference}) {
      auto q = serve::query{*cat_}.engine(m).epoch("C").at_ixp(entry.name);
      EXPECT_EQ(q.count(), 0u);
      EXPECT_TRUE(q.rows().empty());
      EXPECT_TRUE(serve::query{*cat_}.engine(m).epoch("C").at_ixp(entry.name).by_asn()
                      .group_counts()
                      .empty());
    }
  }
  EXPECT_TRUE(exercised) << "epoch C unexpectedly covers the whole dictionary";
}

TEST_F(ExecTest, EmptyMatchShapes) {
  for (const auto m : {serve::exec::mode::vectorized, serve::exec::mode::reference}) {
    EXPECT_EQ(serve::query{*cat_}.engine(m).epoch("A").rtt_between(-5.0, -1.0).count(),
              0u);
    EXPECT_TRUE(
        serve::query{*cat_}.engine(m).epoch("A").member(net::asn{0xFFFFFFFEu}).rows()
            .empty());
    EXPECT_TRUE(serve::query{*cat_}.engine(m).epoch("A").rtt_between(-5.0, -1.0)
                    .rtt_ecdf()
                    .empty());
    EXPECT_TRUE(serve::query{*cat_}.engine(m).epoch("A").top(0).rows().empty());
    const auto rows = cat_->of("A").rows();
    EXPECT_TRUE(serve::query{*cat_}.engine(m).epoch("A").page(rows + 7, 5).rows()
                    .empty());
  }
  // NaN bounds are rejected at the builder, so neither engine ever
  // sees a range the two would interpret differently.
  EXPECT_THROW(serve::query{*cat_}.rtt_between(std::nan(""), 1.0),
               std::invalid_argument);
  EXPECT_THROW(serve::query{*cat_}.rtt_between(0.0, std::nan("")),
               std::invalid_argument);
}

TEST_F(ExecTest, AllNanRttEpochSortsCanonicallyAndSkipsRttScans) {
  // Epoch "N" has NO measured RTT anywhere: sorting falls back to pure
  // canonical order, ECDFs are empty, and every RTT-filtered scan is
  // answered entirely from zone maps without touching a row.
  const auto& ep = cat_->of("N");
  ASSERT_GT(ep.rows(), 0u);
  for (std::size_t i = 0; i < ep.rows(); ++i)
    ASSERT_TRUE(std::isnan(ep.rtt_col()[i]));

  const auto sorted = serve::query{*cat_}.epoch("N").sort_by_rtt().rows();
  const auto canonical = serve::query{*cat_}.epoch("N").rows();
  expect_rows_eq(*cat_, canonical, *cat_, sorted, "all-NaN canonical");
  EXPECT_TRUE(serve::query{*cat_}.epoch("N").rtt_ecdf().empty());

  serve::exec::stats st;
  EXPECT_EQ(serve::query{*cat_}
                .epoch("N")
                .rtt_between(0.0, 1e9)
                .collect_stats(&st)
                .count(),
            0u);
  EXPECT_EQ(st.rows_scanned, 0u);
  EXPECT_EQ(st.rows_skipped, ep.rows());
  EXPECT_EQ(st.blocks_skipped, ep.blocks().size());

  query_spec sp;
  sp.epoch = "N";
  sp.sort = true;
  sp.page_kind = 2;
  sp.off = 3;
  sp.lim = 11;
  expect_spec_equivalent(*cat_, *cat_, sp);
}

TEST_F(ExecTest, SingleRowMemberRuns) {
  // An ASN with exactly one row: the tightest member() point lookup
  // (also the single-row range shape for the scan kernels).
  const auto& ep = cat_->of("A");
  std::map<std::uint32_t, std::size_t> freq;
  for (std::size_t i = 0; i < ep.rows(); ++i) ++freq[ep.asn_col()[i]];
  std::optional<net::asn> unique;
  for (const auto& [asn, n] : freq)
    if (n == 1) {
      unique = net::asn{asn};
      break;
    }
  if (!unique) GTEST_SKIP() << "scenario has no single-row ASN";

  query_spec sp;
  sp.epoch = "A";
  sp.member = unique;
  expect_spec_equivalent(*cat_, *cat_, sp);
  sp.sort = true;
  sp.page_kind = 1;
  sp.k = 1;
  expect_spec_equivalent(*cat_, *cat_, sp);
  EXPECT_EQ(serve::query{*cat_}.epoch("A").member(*unique).count(), 1u);
}

TEST_F(ExecTest, SortedPagesTileTheSortedOrder) {
  // nth_element partial selection: adjacent sorted pages reassemble the
  // fully sorted result exactly.
  const auto all = serve::query{*cat_}.epoch("A").sort_by_rtt().rows();
  ASSERT_GT(all.size(), 20u);
  std::vector<serve::iface_row> paged;
  const std::size_t page = 7;
  for (std::size_t off = 0; off < all.size(); off += page) {
    const auto p = serve::query{*cat_}.epoch("A").sort_by_rtt().page(off, page).rows();
    paged.insert(paged.end(), p.begin(), p.end());
  }
  expect_rows_eq(*cat_, all, *cat_, paged, "sorted page tiling");
  // And descending top(k) is a prefix of the full descending order.
  const auto desc = serve::query{*cat_}.epoch("A").sort_by_rtt(false).rows();
  const auto top = serve::query{*cat_}.epoch("A").sort_by_rtt(false).top(9).rows();
  ASSERT_EQ(top.size(), 9u);
  expect_rows_eq(*cat_, {desc.begin(), desc.begin() + 9}, *cat_, top, "desc top");
}

TEST_F(ExecTest, ScanStatsAccountForEveryRow) {
  const auto& ep = cat_->of("A");

  // Block-scan shape without early exit: scanned + skipped covers the
  // epoch exactly, and a selective RTT band skips at least one block on
  // this scenario (zone maps).
  serve::exec::stats st;
  (void)serve::query{*cat_}
      .epoch("A")
      .cls(peering_class::remote)
      .rtt_between(0.0, 1.0)
      .collect_stats(&st)
      .count();
  EXPECT_EQ(st.rows_scanned + st.rows_skipped, ep.rows());

  // member(): the permutation index prunes everything but the ASN run.
  serve::exec::stats mst;
  const auto asn = net::asn{ep.asn_col().front()};
  const auto n =
      serve::query{*cat_}.epoch("A").member(asn).collect_stats(&mst).count();
  EXPECT_EQ(mst.rows_scanned + mst.rows_skipped, ep.rows());
  EXPECT_GE(mst.rows_scanned, n);
  EXPECT_LT(mst.rows_scanned, ep.rows());

  // member() + at_ixp(): the invariant covers the whole epoch even when
  // both indexes narrow the run (and when the block is absent).
  serve::exec::stats bst;
  (void)serve::query{*cat_}
      .epoch("A")
      .at_ixp(cat_->ixps()[ep.blocks().front().ixp].name)
      .member(asn)
      .collect_stats(&bst)
      .count();
  EXPECT_EQ(bst.rows_scanned + bst.rows_skipped, ep.rows());
  for (const auto& entry : cat_->ixps()) {
    const auto ref = cat_->ixp_by_name(entry.name);
    if (cat_->of("C").block_of(*ref) != nullptr) continue;
    serve::exec::stats ast;
    EXPECT_EQ(serve::query{*cat_}
                  .epoch("C")
                  .at_ixp(entry.name)
                  .member(asn)
                  .collect_stats(&ast)
                  .count(),
              0u);
    EXPECT_EQ(ast.rows_scanned + ast.rows_skipped, cat_->of("C").rows());
    break;
  }

  // A provably-empty RTT band skips every block without touching rows.
  serve::exec::stats est;
  (void)serve::query{*cat_}
      .epoch("A")
      .rtt_between(-5.0, -1.0)
      .collect_stats(&est)
      .count();
  EXPECT_EQ(est.rows_scanned, 0u);
  EXPECT_EQ(est.rows_skipped, ep.rows());
  EXPECT_EQ(est.blocks_skipped, ep.blocks().size());

  // at_ixp(): rows outside the block are index-pruned, never scanned.
  serve::exec::stats xst;
  const auto& blk = ep.blocks().front();
  (void)serve::query{*cat_}
      .epoch("A")
      .at_ixp(cat_->ixps()[blk.ixp].name)
      .rtt_between(0.0, 1e9)
      .collect_stats(&xst)
      .count();
  EXPECT_EQ(xst.rows_scanned + xst.rows_skipped, ep.rows());
  EXPECT_LE(xst.rows_scanned, blk.end - blk.begin);

  // Early-exit canonical paging: the invariant holds even when the
  // collection short-circuits at offset + limit.
  serve::exec::stats cst;
  (void)serve::query{*cat_}
      .epoch("A")
      .cls(peering_class::unknown)
      .page(0, 1)
      .collect_stats(&cst)
      .rows();
  EXPECT_EQ(cst.rows_scanned + cst.rows_skipped, ep.rows());
}

TEST_F(ExecTest, DiffMatchesReferenceAcrossScopes) {
  for (const auto& [from, to] : std::vector<std::pair<const char*, const char*>>{
           {"A", "B"}, {"A", "C"}, {"C", "B"}}) {
    const auto fast = serve::diff_epochs(*cat_, from, to);
    const auto slow = serve::diff_epochs_reference(*cat_, from, to);
    expect_diffs_eq(*cat_, fast, slow);
    // O(1) appeared_of == linear recount.
    for (const auto c :
         {peering_class::unknown, peering_class::local, peering_class::remote}) {
      std::size_t n = 0;
      for (const auto& r : fast.appeared)
        if (r.cls == c) ++n;
      EXPECT_EQ(fast.appeared_of(c), n);
    }
  }
  // The truncated-scope epoch guarantees non-trivial join work.
  const auto d = serve::diff_epochs(*cat_, "C", "B");
  EXPECT_GT(d.appeared.size(), 0u);
  const auto d2 = serve::diff_epochs(*cat_, "B", "C");
  EXPECT_GT(d2.disappeared.size(), 0u);
}

// ---------------------------------------------------------------------------
// Zone maps / permutation indexes across persistence boundaries.

class ExecPersistTest : public ExecTest {
 protected:
  static std::string temp_path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string{"opwat_exec_"} + name + "_" + std::to_string(::getpid()) +
             ".opwatc"))
        .string();
  }
};

TEST_F(ExecPersistTest, IndexesSurviveSaveLoad) {
  const auto path = temp_path("roundtrip");
  cat_->save(path);
  const auto loaded = serve::catalog::load(path);
  std::remove(path.c_str());

  expect_indexes_valid(loaded);
  std::mt19937 rng{99};
  for (int c = 0; c < 120; ++c) {
    // Reference on the original vs vectorized on the loaded copy: one
    // check covers engine equivalence AND load-time index rebuilding.
    const auto sp = random_spec(rng, *cat_);
    expect_spec_equivalent(*cat_, loaded, sp);
    if (::testing::Test::HasFailure()) FAIL() << "spec " << c << ": " << sp.describe();
  }
  const auto fast = serve::diff_epochs(loaded, "C", "B");
  const auto slow = serve::diff_epochs_reference(*cat_, "C", "B");
  expect_diffs_eq(loaded, fast, slow);
}

TEST_F(ExecPersistTest, IndexesSurviveMergeFrom) {
  const auto path = temp_path("merge");
  cat_->save(path);
  serve::catalog merged;
  merged.merge_from(path);
  std::remove(path.c_str());

  expect_indexes_valid(merged);
  std::mt19937 rng{123};
  for (int c = 0; c < 120; ++c) {
    const auto sp = random_spec(rng, *cat_);
    expect_spec_equivalent(*cat_, merged, sp);
    if (::testing::Test::HasFailure()) FAIL() << "spec " << c << ": " << sp.describe();
  }
}

}  // namespace
