// traIXroute triplet rule and Step-4/5 extraction on hand-built paths.
#include <gtest/gtest.h>

#include "opwat/db/ip2as.hpp"
#include "opwat/db/merge.hpp"
#include "opwat/db/snapshot.hpp"
#include "opwat/traix/crossing.hpp"
#include "opwat/world/generator.hpp"

namespace {

using namespace opwat;
using namespace opwat::traix;

class TraixTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new world::world{world::generate(world::tiny_config(61))};
    const auto snaps = std::vector<db::snapshot>{
        db::make_snapshot(*w_, db::source_kind::website, {}, util::rng{1})};
    view_ = new db::merged_view{db::merged_view::build(snaps)};
    p2a_ = new db::ip2as{db::ip2as::build(*w_)};
  }
  static void TearDownTestSuite() {
    delete p2a_;
    delete view_;
    delete w_;
  }

  /// Two members of the same IXP plus addresses to build paths from.
  struct pair_fixture {
    const world::membership* a = nullptr;
    const world::membership* b = nullptr;
  };
  static pair_fixture find_pair() {
    for (const auto& a : w_->memberships)
      for (const auto& b : w_->memberships)
        if (a.ixp == b.ixp && a.member != b.member) return {&a, &b};
    return {};
  }

  static measure::trace make_trace(std::vector<net::ipv4_addr> ips) {
    measure::trace t;
    double rtt = 1.0;
    for (const auto ip : ips) {
      measure::hop h;
      h.ip = ip;
      h.rtt_ms = (rtt += 1.0);
      t.hops.push_back(h);
    }
    t.reached = true;
    return t;
  }

  static world::world* w_;
  static db::merged_view* view_;
  static db::ip2as* p2a_;
};

world::world* TraixTest::w_ = nullptr;
db::merged_view* TraixTest::view_ = nullptr;
db::ip2as* TraixTest::p2a_ = nullptr;

TEST_F(TraixTest, DetectsTripletCrossing) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  // Path: A-internal -> B's LAN address -> B-internal.
  const auto a_ip = w_->ases[a->member].backbone.at(2);
  const auto b_ip = w_->ases[b->member].backbone.at(2);
  const auto t = make_trace({a_ip, b->interface_ip, b_ip});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  ASSERT_EQ(ex.crossings.size(), 1u);
  EXPECT_EQ(ex.crossings[0].ixp, a->ixp);
  EXPECT_EQ(ex.crossings[0].near_as, w_->ases[a->member].asn);
  EXPECT_EQ(ex.crossings[0].far_as, w_->ases[b->member].asn);
  EXPECT_EQ(ex.crossings[0].ixp_ip, b->interface_ip);
}

TEST_F(TraixTest, NoCrossingWhenThirdHopForeign) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  // Third hop in a different AS than the LAN interface owner: rule (i)
  // fails.
  const auto a_ip = w_->ases[a->member].backbone.at(2);
  const auto c_ip = w_->ases[a->member].backbone.at(3);  // back into A
  const auto t = make_trace({a_ip, b->interface_ip, c_ip});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.crossings.empty());
}

TEST_F(TraixTest, NoCrossingWhenPrevHopSameAs) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  // Previous hop already inside B: rule (ii) fails.
  const auto b_int1 = w_->ases[b->member].backbone.at(2);
  const auto b_int2 = w_->ases[b->member].backbone.at(3);
  const auto t = make_trace({b_int1, b->interface_ip, b_int2});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.crossings.empty());
}

TEST_F(TraixTest, StarBlocksTriplet) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  auto t = make_trace({w_->ases[a->member].backbone.at(2), b->interface_ip,
                       w_->ases[b->member].backbone.at(2)});
  t.hops[0].star = true;
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.crossings.empty());
}

TEST_F(TraixTest, AdjacencyExtractedEvenWithoutTriplet) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  // {member interface, IXP address} pair without a valid third hop.
  const auto t = make_trace({w_->ases[a->member].backbone.at(2), b->interface_ip});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  ASSERT_EQ(ex.adjacencies.size(), 1u);
  EXPECT_EQ(ex.adjacencies[0].member_as, w_->ases[a->member].asn);
  EXPECT_EQ(ex.adjacencies[0].ixp, a->ixp);
}

TEST_F(TraixTest, NonMemberPreviousHopYieldsNoAdjacency) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  // Find an AS that is NOT a member of this IXP.
  const world::autonomous_system* outsider = nullptr;
  for (const auto& as : w_->ases) {
    bool member = false;
    for (const auto mid : w_->memberships_of_as(as.id))
      if (w_->memberships[mid].ixp == a->ixp) member = true;
    if (!member) {
      outsider = &as;
      break;
    }
  }
  ASSERT_TRUE(outsider);
  const auto t = make_trace({outsider->backbone.at(2), b->interface_ip});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.adjacencies.empty());
}

TEST_F(TraixTest, PrivateAdjacencyBetweenDifferentAses) {
  const auto& as_a = w_->ases[0];
  const auto& as_b = w_->ases[1];
  const auto t = make_trace({as_a.backbone.at(2), as_b.backbone.at(2)});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  ASSERT_EQ(ex.private_links.size(), 1u);
  EXPECT_EQ(ex.private_links[0].as_a, as_a.asn);
  EXPECT_EQ(ex.private_links[0].as_b, as_b.asn);
}

TEST_F(TraixTest, NoPrivateAdjacencyWithinOneAs) {
  const auto& as_a = w_->ases[0];
  const auto t = make_trace({as_a.backbone.at(2), as_a.backbone.at(3)});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.private_links.empty());
}

TEST_F(TraixTest, IxpHopDoesNotCreatePrivateAdjacency) {
  const auto [a, b] = find_pair();
  ASSERT_TRUE(a && b);
  const auto t = make_trace({w_->ases[a->member].backbone.at(2), b->interface_ip,
                             w_->ases[b->member].backbone.at(2)});
  const auto ex = extract(std::span{&t, 1}, *view_, *p2a_);
  EXPECT_TRUE(ex.private_links.empty());
}

TEST_F(TraixTest, EmptyCorpusYieldsNothing) {
  const auto ex = extract({}, *view_, *p2a_);
  EXPECT_TRUE(ex.crossings.empty());
  EXPECT_TRUE(ex.adjacencies.empty());
  EXPECT_TRUE(ex.private_links.empty());
}

}  // namespace
